"""Library-level structural-invariant auditing.

This is the promoted home of the robustness suite's ``check_invariants``
(tests/integration/test_robustness.py): every core structure exposes an
``audit()`` returning violation strings, the predictor aggregates them
in :meth:`LookaheadBranchPredictor.audit`, and this module wraps the
aggregate into the two forms callers want — a list to inspect, or an
:class:`~repro.common.errors.AuditError` to raise.

The audit checks *structural* legality only (occupancies, field ranges,
uniqueness) — exactly the properties that must survive any injected
fault.  The fault hooks are written to keep corrupted entries
legal-but-wrong, so a failing audit always means a modelling bug, never
a modelled soft error.
"""

from __future__ import annotations

from typing import List

from repro.common.errors import AuditError


def audit_predictor(predictor) -> List[str]:
    """Collect structural-invariant violations across every structure of
    *predictor*; empty when healthy."""
    return predictor.audit()


def assert_healthy(predictor) -> None:
    """Raise :class:`AuditError` when any structural invariant is violated."""
    violations = predictor.audit()
    if violations:
        raise AuditError(violations)
