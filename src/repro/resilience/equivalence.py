"""Architectural equivalence under injected faults.

The predictor is a *hint engine*: every prediction is verified and, when
wrong, restarted — so no corruption of prediction state may ever change
*what the program does*, only how often it mispredicts.  This module
proves that property for a fault campaign by comparing the committed
branch stream (address, resolved direction, resolved target, in
commit order) of a faulted run against the fault-free run of the same
workload and seed.

The committed stream is the model's architectural ground truth: the
workload executor resolves each branch from program state alone, and the
engines feed those resolved branches to the predictor.  A fault plan
that managed to perturb this stream would mean injected corruption
leaked out of the prediction structures — a modelling bug, reported as a
:class:`~repro.verification.differential.Divergence` on the first
differing branch.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.configs import z15_config
from repro.core import LookaheadBranchPredictor
from repro.engine.functional import FunctionalEngine
from repro.resilience.faults import FAULT_KINDS, FaultInjector, FaultPlan
from repro.verification.differential import (
    Divergence,
    DivergenceReport,
    Workload,
    _resolve_workload,
    _workload_name,
    stats_fingerprint,
)


@dataclass(frozen=True)
class ArchObservation:
    """The architectural view of one committed branch — everything the
    program's execution defines, nothing the predictor does."""

    index: int
    address: int
    taken: bool
    target: Optional[int]


def arch_observer_into(sink: List[ArchObservation]) -> Callable:
    """An engine ``observer`` callback recording the committed stream."""

    def observe(outcome) -> None:
        record = outcome.record
        sink.append(
            ArchObservation(
                index=len(sink),
                address=record.address,
                taken=bool(record.actual_taken),
                target=record.actual_target,
            )
        )

    return observe


def diff_arch_observations(
    left: Sequence[ArchObservation], right: Sequence[ArchObservation]
) -> Optional[Divergence]:
    """The first committed-stream disagreement, if any."""
    for a, b in zip(left, right):
        if a == b:
            continue
        for name in ("address", "taken", "target"):
            if getattr(a, name) != getattr(b, name):
                return Divergence(
                    index=a.index,
                    address=a.address,
                    field=name,
                    left=getattr(a, name),
                    right=getattr(b, name),
                )
    if len(left) != len(right):
        shorter = min(len(left), len(right))
        longer = left if len(left) > len(right) else right
        return Divergence(
            index=shorter,
            address=longer[shorter].address,
            field="stream_length",
            left=len(left),
            right=len(right),
        )
    return None


@dataclass
class FaultImpact:
    """Outcome of one fault-vs-fault-free comparison."""

    #: Architectural-equivalence comparison (clean = faults stayed
    #: inside the prediction structures).
    report: DivergenceReport
    plan: FaultPlan
    #: Injector counters (injected/detected/silent/recovered/...).
    fault_counters: dict
    baseline_fingerprint: str
    faulted_fingerprint: str
    baseline_mpki: float
    faulted_mpki: float
    baseline_accuracy: float
    faulted_accuracy: float

    @property
    def mpki_delta(self) -> float:
        """Prediction-quality cost of the campaign (may be negative:
        a fault can accidentally help)."""
        return self.faulted_mpki - self.baseline_mpki

    @property
    def stats_identical(self) -> bool:
        """True when the campaign changed nothing measurable (e.g. every
        fault fired on an empty structure)."""
        return self.baseline_fingerprint == self.faulted_fingerprint


def fault_equivalence_report(
    workload: Workload,
    plan: FaultPlan,
    branches: int = 3000,
    seed: int = 1234,
    warmup: int = 0,
    config_factory: Callable = z15_config,
    engine_mode: str = "reference",
) -> FaultImpact:
    """Run *workload* fault-free and under *plan*; compare the committed
    branch streams and collect the accuracy impact.  *engine_mode*
    drives both runs, so the equivalence verdict also covers the
    specialized kernels' injector seam."""
    baseline_sink: List[ArchObservation] = []
    baseline_engine = FunctionalEngine(
        LookaheadBranchPredictor(config_factory()),
        observer=arch_observer_into(baseline_sink),
        engine_mode=engine_mode,
    )
    baseline_stats = baseline_engine.run_program(
        _resolve_workload(workload, seed),
        max_branches=branches,
        seed=seed,
        warmup_branches=warmup,
    )

    faulted_sink: List[ArchObservation] = []
    faulted_predictor = LookaheadBranchPredictor(config_factory())
    injector = FaultInjector(faulted_predictor, plan)
    faulted_engine = FunctionalEngine(
        faulted_predictor,
        observer=arch_observer_into(faulted_sink),
        injector=injector,
        engine_mode=engine_mode,
    )
    faulted_stats = faulted_engine.run_program(
        _resolve_workload(workload, seed),
        max_branches=branches,
        seed=seed,
        warmup_branches=warmup,
    )

    report = DivergenceReport(
        title=f"fault equivalence: {_workload_name(workload)} "
        f"(rate={plan.rate}, kinds={','.join(plan.kinds)})",
        left_label="fault-free",
        right_label="faulted",
        branches_compared=min(len(baseline_sink), len(faulted_sink)),
        first_divergence=diff_arch_observations(baseline_sink, faulted_sink),
    )
    return FaultImpact(
        report=report,
        plan=plan,
        fault_counters=injector.component_counters(),
        baseline_fingerprint=stats_fingerprint(baseline_stats),
        faulted_fingerprint=stats_fingerprint(faulted_stats),
        baseline_mpki=baseline_stats.mpki,
        faulted_mpki=faulted_stats.mpki,
        baseline_accuracy=baseline_stats.direction_accuracy,
        faulted_accuracy=faulted_stats.direction_accuracy,
    )


def run_fault_suite(
    workloads: Sequence[Workload] = ("compute-kernel", "transactions"),
    branches: int = 2000,
    seed: int = 1234,
    rate: float = 0.01,
    fault_seed: int = 1,
    kinds: Tuple[str, ...] = FAULT_KINDS,
    parity: bool = True,
    audit_interval: int = 500,
) -> List[FaultImpact]:
    """Architectural equivalence for every fault kind in isolation, per
    workload — the CI fault-smoke sweep.

    Each kind gets its own single-kind plan so a regression names the
    faulty path directly.
    """
    impacts: List[FaultImpact] = []
    for workload in workloads:
        for kind in kinds:
            plan = FaultPlan(
                seed=fault_seed,
                rate=rate,
                kinds=(kind,),
                parity=parity,
                audit_interval=audit_interval,
            )
            impacts.append(
                fault_equivalence_report(
                    workload, plan, branches=branches, seed=seed
                )
            )
    return impacts
