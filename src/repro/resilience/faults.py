"""Deterministic, seeded fault injection for the predictor model.

The z15's prediction arrays are large physical structures — the BTB2
alone holds 128K branches in an eDRAM-like macro kept alive by periodic
refresh — so soft errors are part of the design space, and the predictor
is built to absorb them: it is architecturally a *hint engine*, so a
corrupted entry may cost mispredicts but can never corrupt execution.
This module models that failure surface:

* a :class:`FaultPlan` describes *what* to inject — a per-branch fault
  probability, the set of fault kinds, and whether the parity
  detection/recovery path is enabled;
* a :class:`FaultInjector` rides the engines' observer seam
  (``FunctionalEngine(..., injector=...)``) and, once per observed
  branch, may fire one fault through the core structures'
  ``corrupt()`` hooks.

Detection models per-entry parity: a corruption is *detected* when it
flips an odd number of stored bits (single-bit flips always are), in
which case recovery invalidates the entry — always safe for prediction
content.  Even-weight corruptions and omission faults (a dropped staging
transfer, a suppressed refresh writeback) are *silent* and left to
degrade accuracy.

Everything is driven by a :class:`~repro.common.rng.DeterministicRng`
forked from the plan's seed, so a fault campaign is exactly
reproducible — and with ``rate=0`` the injector never perturbs the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.common.corruption import Corruption
from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.resilience.audit import assert_healthy

#: Every fault kind the injector knows, in canonical order.  The array
#: kinds corrupt live entries through the structures' ``corrupt()``
#: hooks; ``staging`` drops or stale-ifies an in-flight BTB2→BTB1
#: transfer; ``refresh`` suppresses upcoming periodic-refresh
#: writebacks (the eDRAM failure mode refresh exists to mask).
FAULT_KINDS: Tuple[str, ...] = (
    "btb1",
    "btb2",
    "tage",
    "perceptron",
    "ctb",
    "crs",
    "staging",
    "refresh",
)

#: Cap on the per-run fault event log (the counters are unbounded; the
#: log keeps the first N events for reports and debugging).
EVENT_LOG_LIMIT = 256


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible description of one fault campaign.

    Frozen and picklable: sweep cells ship plans to worker processes.
    """

    #: Seed for the injector's private deterministic RNG.
    seed: int = 1
    #: Per-branch probability of injecting one fault.
    rate: float = 0.001
    #: Which fault kinds may fire (subset of :data:`FAULT_KINDS`).
    kinds: Tuple[str, ...] = FAULT_KINDS
    #: Model per-entry parity: detected corruptions are recovered by
    #: invalidating the entry.  Off, every corruption is silent.
    parity: bool = True
    #: Run the structural audit every this many branches (0 = off).
    audit_interval: int = 0
    #: Periodic-refresh writebacks swallowed per ``refresh`` fault.
    refresh_suppress_span: int = 4

    def validate(self) -> "FaultPlan":
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError(f"fault rate {self.rate} outside [0, 1]")
        if not self.kinds:
            raise ConfigError("fault plan needs at least one fault kind")
        unknown = [kind for kind in self.kinds if kind not in FAULT_KINDS]
        if unknown:
            raise ConfigError(
                f"unknown fault kinds {unknown}; valid: {list(FAULT_KINDS)}"
            )
        if self.audit_interval < 0:
            raise ConfigError(
                f"audit interval {self.audit_interval} must be >= 0"
            )
        if self.refresh_suppress_span <= 0:
            raise ConfigError(
                f"refresh suppress span {self.refresh_suppress_span} "
                f"must be positive"
            )
        return self


@dataclass
class FaultEvent:
    """One injected fault, as recorded in the injector's event log."""

    #: Branches observed when the fault fired.
    index: int
    #: The fault kind that fired.
    kind: str
    #: Human-readable description from the corruption contract.
    description: str
    #: Stored bits changed (0 for omission faults).
    bits_flipped: int
    #: True when the parity model caught the corruption.
    detected: bool
    #: True when recovery (invalidate-on-parity-error) ran.
    recovered: bool


class FaultInjector:
    """Injects faults into *predictor* while riding an engine's observer
    seam; counts injected/detected/silent/recovered.

    The per-branch hook is :meth:`observe`; direct callers (tests, the
    CLI) may also fire :meth:`inject` explicitly.
    """

    def __init__(self, predictor, plan: FaultPlan):
        plan.validate()
        self.predictor = predictor
        self.plan = plan
        self._rng = DeterministicRng(plan.seed).fork("fault-injector")
        self.branches_seen = 0
        #: Faults that actually corrupted something.
        self.injected = 0
        #: Fire attempts that found the chosen structure empty.
        self.attempts_empty = 0
        #: Corruptions the parity model caught.
        self.detected = 0
        #: Corruptions parity missed (plus all omission faults).
        self.silent = 0
        #: Detected corruptions recovered by invalidation.
        self.recovered = 0
        #: Structural audits executed.
        self.audits = 0
        self.events: List[FaultEvent] = []

    # ------------------------------------------------------------------
    # Engine seam
    # ------------------------------------------------------------------

    def observe(self, outcome) -> None:
        """Per-branch hook: maybe audit, maybe fire one fault."""
        self.branches_seen += 1
        interval = self.plan.audit_interval
        if interval and self.branches_seen % interval == 0:
            self.audit()
        if self.plan.rate > 0.0 and self._rng.chance(self.plan.rate):
            self.inject()

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------

    def inject(self) -> Optional[FaultEvent]:
        """Fire one fault of a plan-chosen kind; returns the event, or
        None when the chosen structure held nothing to corrupt."""
        kind = self._rng.choice(self.plan.kinds)
        corruption = self._corrupt(kind)
        if corruption is None:
            self.attempts_empty += 1
            return None
        self.injected += 1
        detected = self.plan.parity and corruption.bits_flipped % 2 == 1
        recovered = False
        if detected:
            self.detected += 1
            corruption.invalidate()
            self.recovered += 1
            recovered = True
        else:
            self.silent += 1
        event = FaultEvent(
            index=self.branches_seen,
            kind=kind,
            description=corruption.describe(),
            bits_flipped=corruption.bits_flipped,
            detected=detected,
            recovered=recovered,
        )
        if len(self.events) < EVENT_LOG_LIMIT:
            self.events.append(event)
        return event

    def _corrupt(self, kind: str) -> Optional[Corruption]:
        predictor = self.predictor
        if kind == "btb1":
            return predictor.btb1.corrupt(self._rng)
        if kind == "btb2":
            if predictor.btb2 is None:
                return None
            return predictor.btb2.corrupt(self._rng)
        if kind == "staging":
            if predictor.btb2 is None:
                return None
            return predictor.btb2.corrupt_staging(self._rng)
        if kind == "refresh":
            btb2 = predictor.btb2
            if btb2 is None or not btb2.config.inclusive:
                return None
            btb2.suppress_refreshes(self.plan.refresh_suppress_span)
            return Corruption(
                component="btb2",
                location="refresh",
                field="writeback-suppressed",
                bits_flipped=0,
                invalidate=lambda: None,
            )
        if kind == "tage":
            return predictor.tage.corrupt(self._rng)
        if kind == "perceptron":
            return predictor.perceptron.corrupt(self._rng)
        if kind == "ctb":
            return predictor.ctb.corrupt(self._rng)
        if kind == "crs":
            return predictor.crs.corrupt(self._rng)
        raise ConfigError(f"unknown fault kind {kind!r}")

    # ------------------------------------------------------------------
    # Auditing & reporting
    # ------------------------------------------------------------------

    def audit(self) -> None:
        """Run the structural audit; raises AuditError on violations."""
        self.audits += 1
        assert_healthy(self.predictor)

    def component_counters(self) -> dict:
        """Fault statistics in the telemetry harvest shape."""
        return {
            "branches_seen": self.branches_seen,
            "injected": self.injected,
            "attempts_empty": self.attempts_empty,
            "detected": self.detected,
            "silent": self.silent,
            "recovered": self.recovered,
            "audits": self.audits,
        }

    def harvest_into(self, telemetry) -> None:
        """File the fault counters under the ``faults`` component of a
        :class:`~repro.obs.telemetry.Telemetry` registry."""
        telemetry.merge_counts("faults", self.component_counters())
