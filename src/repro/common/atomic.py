"""Crash-consistent file writing: the one place durability lives.

The z15 predictor survives array corruption because every entry is
parity-protected and recovery is invalidate-and-relearn (§VI); the
software analogue for this repo's on-disk artifacts is that *no writer
may ever leave a torn file that a loader mistakes for a good one*.
Two disciplines cover every artifact we write:

* **Whole-file documents** (predictor state, BENCH reports, stats/
  metrics exports, serve snapshots): :func:`atomic_write_text` /
  :func:`atomic_write_bytes` / :func:`atomic_write_json` write to a
  temporary sibling, flush, ``fsync``, then atomically ``os.replace``
  onto the target (and fsync the directory so the rename itself is
  durable).  A kill at any byte offset leaves either the complete old
  file or the complete new file — never a hybrid.  Leftover ``*.tmp.*``
  siblings from a killed writer are ignored by every loader and
  harvested by :func:`discard_stale_temps`.

* **Append-only JSONL streams** (sweep checkpoints, traces, spans,
  bench history, serve journals): rewriting the whole file per row
  would defeat their purpose, so their contract is *bounded tearing*:
  each row is flushed (and, where durability matters more than
  throughput, fsynced via :func:`durable_flush`) as one line, and a
  kill mid-append tears at most the final line, which the matching
  loader detects and drops.  :func:`append_line` packages that
  discipline.

Everything here is dependency-free (``repro.common`` policy) and safe
on any POSIX filesystem; on platforms without ``os.fsync`` on
directories (Windows), directory syncs degrade to a no-op rather than
an error.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import IO, Union

__all__ = [
    "append_line",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "discard_stale_temps",
    "durable_flush",
    "fsync_directory",
]

#: Infix marking the temporary siblings of in-flight atomic writes.
#: Loaders and directory scans must skip names containing it.
TMP_MARKER = ".tmp."


def fsync_directory(path: Union[str, Path]) -> None:
    """fsync a directory so a just-completed rename inside it is
    durable.  Platforms that cannot open directories (Windows) skip
    silently — the rename is still atomic there, just not yet flushed.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def durable_flush(stream: IO) -> None:
    """Flush *stream* through the OS to the device (flush + fsync).

    The append-only writers call this after rows whose loss would be
    unrecoverable (checkpoint rows, journal entries); a later kill can
    then tear at most the *next*, unwritten line.
    """
    stream.flush()
    os.fsync(stream.fileno())


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> Path:
    """Write *data* to *path* atomically: temp sibling, fsync, rename.

    Returns the target path.  A kill at any point leaves either the
    previous file content or the new one, never a mix; the temp file
    uses :data:`TMP_MARKER` so a stale leftover is recognisable.
    """
    target = Path(path)
    directory = target.parent if str(target.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(
        prefix=target.name + TMP_MARKER, dir=str(directory)
    )
    try:
        with os.fdopen(fd, "wb") as stream:
            stream.write(data)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp_name, str(target))
    except BaseException:
        # The write never happened as far as readers are concerned;
        # remove the orphan so it cannot be mistaken for anything.
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    fsync_directory(directory)
    return target


def atomic_write_text(path: Union[str, Path], text: str,
                      encoding: str = "utf-8") -> Path:
    """:func:`atomic_write_bytes` for text content."""
    return atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(path: Union[str, Path], payload, *,
                      indent=None, sort_keys: bool = True,
                      separators=None, trailing_newline: bool = False) -> Path:
    """Serialize *payload* as JSON and write it atomically.

    Defaults mirror the repo's canonical-JSON policy (sorted keys); the
    CLI report writers pass ``indent=2, trailing_newline=True``.
    """
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys,
                      separators=separators)
    if trailing_newline:
        text += "\n"
    return atomic_write_text(path, text)


def append_line(stream: IO[str], line: str, *, fsync: bool = False) -> None:
    """Append one JSONL row (without trailing newline) to an open
    stream under the bounded-tearing contract: the row plus newline is
    written in one call and flushed, optionally through to the device.
    """
    stream.write(line)
    stream.write("\n")
    if fsync:
        durable_flush(stream)
    else:
        stream.flush()


def discard_stale_temps(directory: Union[str, Path]) -> int:
    """Remove leftover :data:`TMP_MARKER` siblings from killed atomic
    writes in *directory* (non-recursive).  Returns the count removed.
    Safe to call concurrently with live writers: an in-flight temp that
    vanishes underneath its writer only fails that single write.
    """
    removed = 0
    try:
        names = os.listdir(str(directory))
    except OSError:
        return 0
    for name in names:
        if TMP_MARKER in name:
            try:
                os.unlink(os.path.join(str(directory), name))
                removed += 1
            except OSError:
                pass
    return removed
