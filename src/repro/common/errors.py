"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class SimulationError(ReproError):
    """The simulation reached an internally inconsistent state."""


class TraceFormatError(ReproError):
    """A trace file or record could not be parsed."""


class StateFormatError(TraceFormatError):
    """A saved predictor-state file is malformed, truncated or of an
    unknown format version."""


class SweepStreamError(TraceFormatError):
    """A sweep checkpoint stream (JSONL result rows) is malformed, or
    does not belong to the sweep being resumed."""


class VerificationError(ReproError):
    """A white-box verification checker detected a DUT/reference mismatch."""


class ServeError(ReproError):
    """The prediction service hit a configuration or protocol problem
    that is not expressible as a per-request rejection."""


class JournalError(TraceFormatError):
    """A tenant journal or snapshot is corrupt beyond the torn tail the
    crash contract allows."""


class AuditError(SimulationError):
    """A structural-invariant audit found corrupted predictor state.

    Raised by the periodic auditor in :mod:`repro.resilience`: the
    predictor is architecturally a hint engine, so *no* injected fault —
    detected or silent — may ever leave a structure in an illegal state.
    The message carries every violation the audit collected.
    """

    def __init__(self, violations):
        self.violations = list(violations)
        super().__init__(
            "predictor state audit failed: " + "; ".join(self.violations)
        )
