"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class SimulationError(ReproError):
    """The simulation reached an internally inconsistent state."""


class TraceFormatError(ReproError):
    """A trace file or record could not be parsed."""


class VerificationError(ReproError):
    """A white-box verification checker detected a DUT/reference mismatch."""
