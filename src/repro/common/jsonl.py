"""Shared JSONL ingestion with the torn-tail crash contract.

Every append-only artifact in this repo (sweep checkpoint streams,
branch traces, span files, bench history, serve journals) shares one
loader discipline:

* a malformed **final** line is the signature of a writer killed
  mid-append — by default it is silently dropped, because the writers
  flush line-at-a-time so that is the only damage a kill can cause;
* malformed JSON **anywhere else** is real corruption and must raise,
  and the error must say exactly where: ``path:line`` plus the byte
  offset of the offending line, so the damage can be inspected with
  ``dd``/``head -c`` instead of guessing;
* ``strict=True`` upgrades even the torn tail to an error — the mode
  CLIs expose as ``--strict`` for pipelines where a partial artifact
  must fail loudly rather than load quietly.

:func:`iter_jsonl` is that discipline, shared; each loader keeps its
own schema validation on top.
"""

from __future__ import annotations

import json
from typing import Callable, Iterator, Tuple, Union


def format_location(path: str, line_number: int, offset: int) -> str:
    """The standard corruption coordinate string: path:line @ byte."""
    return f"{path}:{line_number} (byte offset {offset})"


def iter_jsonl(
    path: str,
    *,
    strict: bool = False,
    error: Callable[[str], Exception] = ValueError,
) -> Iterator[Tuple[int, int, object]]:
    """Yield ``(line_number, byte_offset, decoded_object)`` per line.

    *line_number* is 1-based; *byte_offset* is the offset of the line's
    first byte in the file (as encoded on disk).  Blank lines are
    skipped.  Corruption handling follows the module contract above,
    raising ``error(message)`` — pass the loader's own exception type so
    callers keep their established ``except`` surfaces.
    """
    with open(path, "rb") as stream:
        data = stream.read()
    lines = data.split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()
    offset = 0
    last = len(lines)
    for line_number, raw in enumerate(lines, start=1):
        line_offset = offset
        offset += len(raw) + 1
        text = raw.decode("utf-8", errors="replace").strip()
        if not text:
            continue
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as exc:
            if line_number == last and not strict:
                return  # torn tail from a killed writer
            where = format_location(path, line_number, line_offset)
            if line_number == last:
                raise error(
                    f"{where}: torn final line (killed writer?) rejected "
                    f"by strict loading: {exc.msg}"
                ) from exc
            raise error(
                f"{where}: malformed JSONL row: {exc.msg}"
            ) from exc
        yield line_number, line_offset, obj


__all__ = ["format_location", "iter_jsonl"]
