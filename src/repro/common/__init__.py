"""Shared low-level utilities: address math, bit manipulation, RNG, errors.

Everything in this package is intentionally free of dependencies on the
rest of :mod:`repro` so that any other subpackage may import it.
"""

from repro.common.atomic import (
    append_line,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    discard_stale_temps,
    durable_flush,
    fsync_directory,
)
from repro.common.addresses import (
    HALFWORD,
    LINE_SIZE,
    align_down,
    align_up,
    line_index,
    line_of,
    line_offset,
    lines_between,
    next_line,
)
from repro.common.bits import bit_select, fold_xor, mask, popcount, rotate_left
from repro.common.corruption import Corruption, flipped_bits
from repro.common.errors import (
    AuditError,
    ConfigError,
    ReproError,
    SimulationError,
    StateFormatError,
    TraceFormatError,
    VerificationError,
)
from repro.common.jsonl import format_location, iter_jsonl
from repro.common.rng import DeterministicRng
from repro.common.signals import GracefulShutdown, exit_code_for

__all__ = [
    "append_line",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "discard_stale_temps",
    "durable_flush",
    "exit_code_for",
    "format_location",
    "fsync_directory",
    "iter_jsonl",
    "GracefulShutdown",
    "HALFWORD",
    "LINE_SIZE",
    "align_down",
    "align_up",
    "line_index",
    "line_of",
    "line_offset",
    "lines_between",
    "next_line",
    "bit_select",
    "fold_xor",
    "mask",
    "popcount",
    "rotate_left",
    "AuditError",
    "ConfigError",
    "Corruption",
    "ReproError",
    "SimulationError",
    "StateFormatError",
    "TraceFormatError",
    "VerificationError",
    "flipped_bits",
    "DeterministicRng",
]
