"""Shared low-level utilities: address math, bit manipulation, RNG, errors.

Everything in this package is intentionally free of dependencies on the
rest of :mod:`repro` so that any other subpackage may import it.
"""

from repro.common.addresses import (
    HALFWORD,
    LINE_SIZE,
    align_down,
    align_up,
    line_index,
    line_of,
    line_offset,
    lines_between,
    next_line,
)
from repro.common.bits import bit_select, fold_xor, mask, popcount, rotate_left
from repro.common.corruption import Corruption, flipped_bits
from repro.common.errors import (
    AuditError,
    ConfigError,
    ReproError,
    SimulationError,
    StateFormatError,
    TraceFormatError,
    VerificationError,
)
from repro.common.rng import DeterministicRng

__all__ = [
    "HALFWORD",
    "LINE_SIZE",
    "align_down",
    "align_up",
    "line_index",
    "line_of",
    "line_offset",
    "lines_between",
    "next_line",
    "bit_select",
    "fold_xor",
    "mask",
    "popcount",
    "rotate_left",
    "AuditError",
    "ConfigError",
    "Corruption",
    "ReproError",
    "SimulationError",
    "StateFormatError",
    "TraceFormatError",
    "VerificationError",
    "flipped_bits",
    "DeterministicRng",
]
