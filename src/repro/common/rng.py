"""Deterministic random number generation.

Workload generators and constrained-random verification drivers must be
reproducible run-to-run, so every stochastic component takes an explicit
:class:`DeterministicRng` rather than reaching for the global
:mod:`random` state.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Optional, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A seeded random source with a small, explicit surface.

    Wraps :class:`random.Random` so call sites cannot accidentally use the
    process-global generator, and so child generators can be forked with
    stable derived seeds (``fork("icache")`` always yields the same child
    stream for a given parent seed).
    """

    def __init__(self, seed: int):
        self.seed = seed
        self._random = random.Random(seed)

    def fork(self, label: str) -> "DeterministicRng":
        """Create an independent child stream derived from *label*.

        Forking keeps components decoupled: drawing more numbers in one
        component does not perturb the sequence seen by another.  The
        derivation uses a stable hash (not Python's salted ``hash()``) so
        forked streams are identical across processes and runs.
        """
        digest = hashlib.md5(f"{self.seed}:{label}".encode()).digest()
        child_seed = int.from_bytes(digest[:8], "little")
        return DeterministicRng(child_seed)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high], inclusive on both ends."""
        return self._random.randint(low, high)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._random.random()

    def chance(self, probability: float) -> bool:
        """Return True with the given *probability*."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        return self._random.random() < probability

    def choice(self, items: Sequence[T]) -> T:
        """Pick one element of *items* uniformly."""
        return self._random.choice(items)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Pick one element of *items* with the given relative *weights*."""
        if len(items) != len(weights):
            raise ValueError("items and weights must have the same length")
        return self._random.choices(items, weights=weights, k=1)[0]

    def shuffle(self, items: List[T]) -> None:
        """Shuffle *items* in place."""
        self._random.shuffle(items)

    def sample(self, items: Sequence[T], count: int) -> List[T]:
        """Sample *count* distinct elements of *items*."""
        return self._random.sample(items, count)

    def gauss(self, mean: float, stddev: float) -> float:
        """Draw from a normal distribution."""
        return self._random.gauss(mean, stddev)

    def geometric(self, mean: float, maximum: Optional[int] = None) -> int:
        """Draw a geometric-ish positive integer with the given *mean*.

        Used for run lengths (e.g. instructions between branches).  The
        draw is clamped to at least 1 and optionally at most *maximum*.
        """
        if mean < 1.0:
            raise ValueError(f"mean must be >= 1, got {mean}")
        # Geometric distribution with success probability 1/mean.
        probability = 1.0 / mean
        value = 1
        while not self._random.random() < probability:
            value += 1
            if maximum is not None and value >= maximum:
                return maximum
        return value
