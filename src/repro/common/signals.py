"""Graceful SIGTERM/SIGINT handling for long-running invocations.

A killed ``sweep --stream-out``, ``fleet`` or ``serve`` process should
behave like the z15 under a detected parity error: finish the unit of
work in flight, record that it stopped cleanly, and get out — never
strand a half-written artifact.  :class:`GracefulShutdown` converts the
first SIGTERM/SIGINT into a *flag* the checkpoint loop polls between
rows (so the current row is flushed before exiting), while a second
signal falls through to the default handler for an operator who really
means it.

Exit-code contract: a run that stopped on a signal exits with the
POSIX convention ``128 + signum`` (130 for SIGINT, 143 for SIGTERM) —
distinct from success (0), verification failure (1) and usage/library
errors (2), so wrappers and CI can tell "interrupted cleanly" from
"failed".
"""

from __future__ import annotations

import signal
from typing import Iterable, Optional

__all__ = ["GracefulShutdown", "exit_code_for"]

#: Signals a long-running CLI treats as a shutdown request.
SHUTDOWN_SIGNALS = (signal.SIGINT, signal.SIGTERM)


def exit_code_for(signum: int) -> int:
    """The POSIX exit code for a run stopped by *signum*."""
    return 128 + int(signum)


class GracefulShutdown:
    """Context manager turning the first SIGTERM/SIGINT into a flag.

    Usage::

        with GracefulShutdown() as shutdown:
            for row in work:
                process(row)          # current row always completes
                if shutdown.requested:
                    finish_checkpoint()
                    sys.exit(shutdown.exit_code)

    The second delivery of a handled signal restores and re-raises the
    previous behaviour — a stuck drain can still be interrupted.
    Handlers are restored on exit, and installation degrades to a no-op
    off the main thread (tests drive the flag directly there).
    """

    def __init__(self, signals: Iterable[int] = SHUTDOWN_SIGNALS):
        self.signals = tuple(signals)
        self.requested = False
        self.signum: Optional[int] = None
        self._previous = {}
        self._installed = False

    # -- signal plumbing -------------------------------------------------

    def _handle(self, signum, frame) -> None:
        if self.requested:
            # Second signal: the operator wants out *now*.  Restore the
            # previous disposition and re-deliver.
            self._restore()
            signal.raise_signal(signum)
            return
        self.requested = True
        self.signum = signum

    def _restore(self) -> None:
        if not self._installed:
            return
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):
                pass
        self._previous.clear()
        self._installed = False

    def __enter__(self) -> "GracefulShutdown":
        try:
            for signum in self.signals:
                self._previous[signum] = signal.signal(signum, self._handle)
            self._installed = True
        except ValueError:
            # Not the main thread: signals cannot be installed here.
            self._previous.clear()
        return self

    def __exit__(self, *exc) -> None:
        self._restore()

    # -- polling surface -------------------------------------------------

    @property
    def exit_code(self) -> int:
        """The ``128 + signum`` exit code (0 when never signalled)."""
        return exit_code_for(self.signum) if self.signum is not None else 0

    def request(self, signum: int = signal.SIGTERM) -> None:
        """Set the flag programmatically (tests, in-process servers)."""
        self.requested = True
        if self.signum is None:
            self.signum = signum
