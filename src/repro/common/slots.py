"""``__slots__`` for dataclasses on every supported Python version.

The per-branch hot path allocates thousands of small record objects per
simulated second (:class:`~repro.isa.dynamic.DynamicBranch`,
:class:`~repro.core.gpq.PredictionRecord`, search traces, table lookup
snapshots).  Giving those classes ``__slots__`` removes the per-instance
``__dict__``, which both shrinks them and makes attribute access faster.

``@dataclass(slots=True)`` only exists on Python 3.10+; this module
backports the same transformation (CPython's ``dataclasses._add_slots``)
so the package keeps its 3.9 floor.  Apply :func:`add_slots` *below* the
``@dataclass`` decorator:

    @add_slots
    @dataclass
    class Hot:
        field: int = 0

The decorator rebuilds the class with ``__slots__`` set to its field
names, so instances can never grow ad-hoc attributes — a deliberate
invariant for the hot records (see INTERNALS.md §9).
"""

from __future__ import annotations

import dataclasses


def _frozen_getstate(self):
    return [getattr(self, f.name) for f in dataclasses.fields(self)]


def _frozen_setstate(self, state):
    for field, value in zip(dataclasses.fields(self), state):
        object.__setattr__(self, field.name, value)


def add_slots(cls):
    """Rebuild dataclass *cls* with ``__slots__`` over its fields."""
    if "__slots__" in cls.__dict__:
        raise TypeError(f"{cls.__name__} already specifies __slots__")
    cls_dict = dict(cls.__dict__)
    field_names = tuple(f.name for f in dataclasses.fields(cls))
    cls_dict["__slots__"] = field_names
    for field_name in field_names:
        # Field defaults live inside the generated __init__; the class
        # attributes would shadow the slot descriptors.
        cls_dict.pop(field_name, None)
    cls_dict.pop("__dict__", None)
    cls_dict.pop("__weakref__", None)
    new_cls = type(cls)(cls.__name__, cls.__bases__, cls_dict)
    new_cls.__qualname__ = getattr(cls, "__qualname__", cls.__name__)
    if cls.__dataclass_params__.frozen and "__getstate__" not in cls_dict:
        # Default pickling restores slot state via setattr, which a
        # frozen dataclass forbids; route it through object.__setattr__.
        new_cls.__getstate__ = _frozen_getstate
        new_cls.__setstate__ = _frozen_setstate
    return new_cls
