"""Instruction-address arithmetic.

The z15 branch-prediction logic searches the instruction address space in
64-byte lines (section IV of the paper: "cover 64 bytes of address space
with just one search").  z/Architecture instructions are 2, 4 or 6 bytes
long and always halfword (2-byte) aligned, so every instruction address in
this model is an even integer.

Addresses are plain Python ints interpreted as 64-bit virtual addresses.
"""

from __future__ import annotations

#: Bytes covered by one branch-prediction search (one BTB1 row).
LINE_SIZE = 64

#: Minimum instruction alignment in the modelled CISC ISA.
HALFWORD = 2

#: Number of address bits kept when normalising to the 64-bit space.
ADDRESS_BITS = 64

_ADDRESS_MASK = (1 << ADDRESS_BITS) - 1


def normalize(address: int) -> int:
    """Wrap *address* into the modelled 64-bit virtual address space."""
    return address & _ADDRESS_MASK


def align_down(address: int, alignment: int = LINE_SIZE) -> int:
    """Round *address* down to a multiple of *alignment*."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return address - (address % alignment)


def align_up(address: int, alignment: int = LINE_SIZE) -> int:
    """Round *address* up to a multiple of *alignment*."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    remainder = address % alignment
    if remainder == 0:
        return address
    return address + alignment - remainder


def line_of(address: int, line_size: int = LINE_SIZE) -> int:
    """Return the line-aligned base address containing *address*."""
    return align_down(address, line_size)


def line_index(address: int, line_size: int = LINE_SIZE) -> int:
    """Return the line number (address divided by the line size)."""
    return address // line_size


def line_offset(address: int, line_size: int = LINE_SIZE) -> int:
    """Return the byte offset of *address* within its line."""
    return address % line_size


def next_line(address: int, line_size: int = LINE_SIZE) -> int:
    """Return the base address of the line after the one holding *address*."""
    return line_of(address, line_size) + line_size


def lines_between(start: int, end: int, line_size: int = LINE_SIZE) -> int:
    """Number of line steps a sequential search walks from *start* to *end*.

    Both endpoints are inclusive of their own lines: an address in the same
    line is 0 steps away, an address in the following line is 1 step away.
    *end* must not precede *start*.
    """
    if end < start:
        raise ValueError(f"end ({end:#x}) precedes start ({start:#x})")
    return line_index(end, line_size) - line_index(start, line_size)


def is_halfword_aligned(address: int) -> bool:
    """True when *address* obeys the ISA's 2-byte instruction alignment."""
    return address % HALFWORD == 0
