"""The corruption contract core structures expose to the fault framework.

The z15's arrays are physically vulnerable — the BTB2 in particular is a
128K-branch eDRAM-like macro kept alive by periodic refresh — but the
predictor is architecturally a *hint engine*: a corrupted entry may cost
mispredicts, never correctness.  The fault-injection framework in
:mod:`repro.resilience` models that surface, and each core structure
participates through one small hook:

``corrupt(rng) -> Optional[Corruption]``
    Flip bits in (or otherwise perturb) one deterministically chosen
    live entry.  The mutation must keep the entry *legal-but-wrong*:
    every field stays inside the range the structure's ``audit()``
    checks, so a fault can never fake a modelling bug.  Returns None
    when the structure holds nothing to corrupt.

The returned :class:`Corruption` describes what happened — which
component, where, how many stored bits changed — and carries an
``invalidate`` callback implementing the hardware's recovery action
(invalidate-on-parity-error): dropping the corrupted entry entirely,
which is always safe for prediction content.

This module is deliberately tiny and import-free of the simulator so the
core structures can depend on it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common.bits import popcount


def flipped_bits(old: int, new: int) -> int:
    """Hamming distance between two stored field encodings."""
    return popcount(old ^ new)


@dataclass
class Corruption:
    """One applied corruption, as reported by a structure's ``corrupt()``.

    ``bits_flipped`` is the Hamming distance of the stored encoding —
    the quantity the parity model cares about: per-entry parity detects
    every odd-weight error and misses every even-weight one.  Omission
    faults (a dropped transfer, a suppressed refresh) flip no stored
    bits and report 0.
    """

    #: Owning component (``btb1``, ``btb2``, ``tage``, ...).
    component: str
    #: Human-readable location (row/way/thread), for fault logs.
    location: str
    #: The corrupted field name.
    field: str
    #: Stored bits changed by the corruption (0 for omission faults).
    bits_flipped: int
    #: Recovery action: invalidate the corrupted entry (always safe).
    invalidate: Callable[[], None]

    def describe(self) -> str:
        return (
            f"{self.component}[{self.location}].{self.field} "
            f"({self.bits_flipped} bits)"
        )
