"""Bit-manipulation helpers used by the prediction-structure index/tag math.

Hardware tables index and tag with selected, folded address bits; these
helpers keep that arithmetic explicit and in one place.
"""

from __future__ import annotations


def mask(width: int) -> int:
    """Return a mask of *width* low-order ones (``mask(3) == 0b111``)."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def bit_select(value: int, low: int, width: int) -> int:
    """Extract *width* bits of *value* starting at bit *low* (LSB = bit 0)."""
    if low < 0:
        raise ValueError(f"low must be non-negative, got {low}")
    return (value >> low) & mask(width)


def fold_xor(value: int, width: int) -> int:
    """Fold *value* down to *width* bits by XOR-ing successive chunks.

    This mirrors the classic hardware trick for hashing a wide value (an
    instruction address or a history vector) into a narrow table index.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    folded = 0
    remaining = value
    chunk_mask = mask(width)
    while remaining:
        folded ^= remaining & chunk_mask
        remaining >>= width
    return folded


class BitFolder:
    """A precompiled :func:`fold_xor` bound to one fixed width.

    The prediction tables fold on every search with a table-constant
    width; binding the width (and its chunk mask) once at config-bind
    time keeps the per-lookup work to the XOR loop alone.  A slotted
    callable class rather than a closure so predictors holding folders
    stay picklable (checkpoint/evict state rides :mod:`pickle`).
    """

    __slots__ = ("width", "chunk_mask")

    def __init__(self, width: int):
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        self.width = width
        self.chunk_mask = (1 << width) - 1

    def __call__(self, value: int) -> int:
        width = self.width
        chunk_mask = self.chunk_mask
        folded = 0
        while value:
            folded ^= value & chunk_mask
            value >>= width
        return folded

    def __reduce__(self):
        return (BitFolder, (self.width,))


def bit_folder(width: int) -> BitFolder:
    """A precompiled :func:`fold_xor` for one fixed *width*."""
    return BitFolder(width)


def rotate_left(value: int, amount: int, width: int) -> int:
    """Rotate the low *width* bits of *value* left by *amount*."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    amount %= width
    value &= mask(width)
    return ((value << amount) | (value >> (width - amount))) & mask(width)


def popcount(value: int) -> int:
    """Number of set bits in *value* (non-negative)."""
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    return bin(value).count("1")


def sign(value: int) -> int:
    """Return -1, 0 or +1 matching the sign of *value*."""
    if value > 0:
        return 1
    if value < 0:
        return -1
    return 0
