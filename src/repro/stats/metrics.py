"""Run statistics: accuracy, provider breakdowns, MPKI.

The conclusion's headline metric is "the average number of mispredicted
branches per thousand instructions" (MPKI); a mispredicted branch is one
whose predicted direction was wrong or whose agreed-taken target was
wrong.  Everything else here is the supporting breakdown the paper's
figures discuss: provider distribution (figures 8/9), surprise-branch
classes (section IV), search behaviour (SKOOT/CPRED/BTB2, sections
III-IV).
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.predictor import PredictionOutcome
from repro.core.providers import DirectionProvider, TargetProvider


class MispredictClass(enum.Enum):
    """Why (or whether) a branch disrupted the pipeline."""

    # Identity hash (a C-level slot) instead of Enum's Python-level
    # name hash: the per-branch class Counter hashes these constantly.
    __hash__ = object.__hash__

    #: Correct dynamic prediction, or a correctly-ignored surprise.
    NONE = "none"
    #: Dynamic prediction, wrong direction — full restart.
    DIRECTION_WRONG = "direction-wrong"
    #: Dynamic taken prediction, wrong target — full restart.
    TARGET_WRONG = "target-wrong"
    #: Surprise guessed not-taken that resolved taken — full restart.
    SURPRISE_TAKEN = "surprise-taken"
    #: Surprise guessed taken (relative): decode-time restart only.
    SURPRISE_GUESSED_TAKEN_RELATIVE = "surprise-guessed-taken-relative"
    #: Surprise guessed taken (indirect): front end waits for execution.
    SURPRISE_GUESSED_TAKEN_INDIRECT = "surprise-guessed-taken-indirect"
    #: Surprise guessed taken that resolved not taken — full restart.
    SURPRISE_GUESS_WRONG = "surprise-guess-wrong"


def classify(outcome: PredictionOutcome) -> MispredictClass:
    """Classify one prediction outcome for penalty accounting."""
    record = outcome.record
    actual = record.actual_taken
    if record.dynamic:
        # Field-level restatement of record.direction_wrong /
        # record.target_wrong (both gate on the branch being resolved).
        if actual is not None:
            if record.predicted_taken != actual:
                return MispredictClass.DIRECTION_WRONG
            if actual and record.predicted_target != record.actual_target:
                return MispredictClass.TARGET_WRONG
        return MispredictClass.NONE
    # Surprise branch.
    guessed_taken = record.predicted_taken
    actual_taken = bool(actual)
    if not guessed_taken:
        if actual_taken:
            return MispredictClass.SURPRISE_TAKEN
        return MispredictClass.NONE
    if not actual_taken:
        return MispredictClass.SURPRISE_GUESS_WRONG
    if record.predicted_target is None:
        return MispredictClass.SURPRISE_GUESSED_TAKEN_INDIRECT
    if record.predicted_target != record.actual_target:
        return MispredictClass.SURPRISE_GUESS_WRONG
    return MispredictClass.SURPRISE_GUESSED_TAKEN_RELATIVE


#: Classes that count as *mispredicted branches* for MPKI.
MISPREDICT_CLASSES = frozenset(
    {
        MispredictClass.DIRECTION_WRONG,
        MispredictClass.TARGET_WRONG,
        MispredictClass.SURPRISE_TAKEN,
        MispredictClass.SURPRISE_GUESS_WRONG,
    }
)


@dataclass
class RunStats:
    """Aggregated statistics for one simulation run."""

    branches: int = 0
    instructions: int = 0
    #: True when ``instructions`` was derived from the branch count via
    #: :data:`repro.engine.functional.INSTRUCTIONS_PER_BRANCH` rather
    #: than actually counted — MPKI is then an approximation too.
    instructions_approximate: bool = False
    dynamic_predictions: int = 0
    surprise_branches: int = 0
    taken_branches: int = 0
    mispredicted_branches: int = 0
    direction_wrong: int = 0
    target_wrong: int = 0
    classes: Counter = field(default_factory=Counter)
    #: Per direction provider: [predictions, correct].
    direction_providers: Dict[DirectionProvider, list] = field(default_factory=dict)
    #: Per target provider (on agreed-taken dynamic branches): [uses, correct].
    target_providers: Dict[TargetProvider, list] = field(default_factory=dict)
    # Search-pipeline behaviour.
    lines_searched: int = 0
    empty_searches: int = 0
    lines_skipped_by_skoot: int = 0
    skoot_overshoots: int = 0
    btb2_triggers: int = 0
    bad_predictions_removed: int = 0
    bad_taken_restarts: int = 0
    cpred_accelerated_streams: int = 0
    predicted_taken_dynamic: int = 0

    def record(self, outcome: PredictionOutcome) -> None:
        """Fold one prediction outcome in."""
        record = outcome.record
        trace = outcome.trace
        dynamic = record.dynamic
        predicted_taken = record.predicted_taken
        actual_taken = record.actual_taken
        self.branches += 1
        if dynamic:
            self.dynamic_predictions += 1
        else:
            self.surprise_branches += 1
        if actual_taken:
            self.taken_branches += 1

        # classify() inlined for the dominant dynamic case; the
        # mispredict-set membership test becomes an identity chain
        # (MISPREDICT_CLASSES restated branch by branch).
        if dynamic:
            if actual_taken is None:
                klass = MispredictClass.NONE
            elif predicted_taken != actual_taken:
                klass = MispredictClass.DIRECTION_WRONG
            elif actual_taken and record.predicted_target != record.actual_target:
                klass = MispredictClass.TARGET_WRONG
            else:
                klass = MispredictClass.NONE
        else:
            klass = classify(outcome)
        self.classes[klass] += 1
        if klass is MispredictClass.DIRECTION_WRONG:
            self.mispredicted_branches += 1
            self.direction_wrong += 1
        elif klass is MispredictClass.TARGET_WRONG:
            self.mispredicted_branches += 1
            self.target_wrong += 1
        elif (
            klass is MispredictClass.SURPRISE_TAKEN
            or klass is MispredictClass.SURPRISE_GUESS_WRONG
        ):
            self.mispredicted_branches += 1

        providers = self.direction_providers
        provider_stats = providers.get(record.direction_provider)
        if provider_stats is None:
            provider_stats = providers[record.direction_provider] = [0, 0]
        provider_stats[0] += 1
        if predicted_taken == actual_taken:
            provider_stats[1] += 1

        if dynamic and predicted_taken:
            self.predicted_taken_dynamic += 1
            if actual_taken:
                targets = self.target_providers
                target_stats = targets.get(record.target_provider)
                if target_stats is None:
                    target_stats = targets[record.target_provider] = [0, 0]
                target_stats[0] += 1
                if record.predicted_target == record.actual_target:
                    target_stats[1] += 1

        self.lines_searched += trace.lines_searched
        self.empty_searches += trace.empty_searches
        self.lines_skipped_by_skoot += trace.lines_skipped_by_skoot
        self.btb2_triggers += trace.btb2_triggers
        self.bad_predictions_removed += trace.bad_predictions_removed
        self.bad_taken_restarts += trace.bad_taken_restarts
        if trace.skoot_overshoot:
            self.skoot_overshoots += 1
        if trace.cpred_accelerated:
            self.cpred_accelerated_streams += 1

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------

    @property
    def mpki(self) -> float:
        """Mispredicted branches per thousand instructions."""
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.mispredicted_branches / self.instructions

    @property
    def branch_mpki(self) -> float:
        """Mispredicted branches per thousand *branches*."""
        if self.branches == 0:
            return 0.0
        return 1000.0 * self.mispredicted_branches / self.branches

    @property
    def direction_accuracy(self) -> float:
        """Fraction of branches whose direction was predicted correctly."""
        if self.branches == 0:
            return 0.0
        wrong = self.classes[MispredictClass.DIRECTION_WRONG] + self.classes[
            MispredictClass.SURPRISE_TAKEN
        ] + self.classes[MispredictClass.SURPRISE_GUESS_WRONG]
        return 1.0 - wrong / self.branches

    @property
    def dynamic_coverage(self) -> float:
        """Fraction of executed branches found in the BTB1 at search time."""
        if self.branches == 0:
            return 0.0
        return self.dynamic_predictions / self.branches

    def provider_share(self, provider: DirectionProvider) -> float:
        stats = self.direction_providers.get(provider)
        if stats is None or self.branches == 0:
            return 0.0
        return stats[0] / self.branches

    def provider_accuracy(self, provider: DirectionProvider) -> Optional[float]:
        stats = self.direction_providers.get(provider)
        if stats is None or stats[0] == 0:
            return None
        return stats[1] / stats[0]

    def target_provider_accuracy(self, provider: TargetProvider) -> Optional[float]:
        stats = self.target_providers.get(provider)
        if stats is None or stats[0] == 0:
            return None
        return stats[1] / stats[0]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def report(self, title: str = "run") -> str:
        """A human-readable multi-line summary.

        Degenerate runs (zero branches, zero instructions) report the
        undefined ratios as ``n/a`` rather than a misleading 0.00%.
        """
        approx = " (approximate)" if self.instructions_approximate else ""
        if self.branches:
            coverage = f"{self.dynamic_coverage:6.2%}"
            accuracy = f"{self.direction_accuracy:6.2%}"
        else:
            coverage = accuracy = "   n/a"
        if self.instructions:
            mpki = f"{self.mpki:8.3f}{approx}"
        else:
            mpki = "     n/a"
        lines = [
            f"== {title} ==",
            f"branches:            {self.branches}",
            f"instructions:        {self.instructions}{approx}",
            f"dynamic coverage:    {coverage}",
            f"direction accuracy:  {accuracy}",
            f"mispredicts:         {self.mispredicted_branches}"
            f"  (direction {self.direction_wrong}, target {self.target_wrong})",
            f"MPKI:                {mpki}",
        ]
        lines.append("direction providers:")
        for provider, (count, correct) in sorted(
            self.direction_providers.items(), key=lambda kv: -kv[1][0]
        ):
            accuracy = correct / count if count else 0.0
            lines.append(
                f"  {provider.value:<14} {count:>8}  ({accuracy:6.2%} correct)"
            )
        if self.target_providers:
            lines.append("target providers (agreed-taken):")
            for provider, (count, correct) in sorted(
                self.target_providers.items(), key=lambda kv: -kv[1][0]
            ):
                accuracy = correct / count if count else 0.0
                lines.append(
                    f"  {provider.value:<14} {count:>8}  ({accuracy:6.2%} correct)"
                )
        return "\n".join(lines)
