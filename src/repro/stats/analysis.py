"""Per-branch misprediction analysis and trace-file loading.

Section V motivates the tiny 32-entry perceptron with the observation
that "it is often the case that a small subset of branch instruction
addresses is responsible for a disproportionately larger proportion of
the total mispredictions in a workload".  This module measures exactly
that: per-address execution/misprediction counts, concentration curves,
and the hot-branch list.

It is also the analysis-side entry point for JSONL traces written by
:class:`repro.obs.trace.TraceWriter`: :func:`load_trace` parses and
schema-validates a trace file into a :class:`TraceDocument`, which can
re-run the per-branch/summary reconciliation offline and rebuild the
run's telemetry registry.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.predictor import PredictionOutcome
from repro.stats.metrics import MISPREDICT_CLASSES, classify


@dataclass
class HotBranch:
    """One address's misprediction record."""

    address: int
    executions: int
    mispredicts: int

    @property
    def mispredict_rate(self) -> float:
        if self.executions == 0:
            return 0.0
        return self.mispredicts / self.executions


class MispredictProfile:
    """Collects per-branch-address misprediction statistics."""

    def __init__(self) -> None:
        self._executions: Counter = Counter()
        self._mispredicts: Counter = Counter()
        self.total_branches = 0
        self.total_mispredicts = 0

    def record(self, outcome: PredictionOutcome) -> None:
        address = outcome.record.address
        self._executions[address] += 1
        self.total_branches += 1
        if classify(outcome) in MISPREDICT_CLASSES:
            self._mispredicts[address] += 1
            self.total_mispredicts += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def distinct_addresses(self) -> int:
        return len(self._executions)

    @property
    def mispredicting_addresses(self) -> int:
        return len(self._mispredicts)

    def top(self, count: int) -> List[HotBranch]:
        """The *count* worst branches by absolute mispredicts."""
        worst = self._mispredicts.most_common(count)
        return [
            HotBranch(
                address=address,
                executions=self._executions[address],
                mispredicts=mispredicts,
            )
            for address, mispredicts in worst
        ]

    def concentration(self, top_fraction: float) -> float:
        """Share of all mispredicts caused by the top *top_fraction* of
        static branch addresses (by mispredict count).

        ``concentration(0.1) == 0.8`` reads: 10% of the branches cause
        80% of the mispredicts.
        """
        if not 0.0 < top_fraction <= 1.0:
            raise ValueError("top_fraction must be in (0, 1]")
        if self.total_mispredicts == 0:
            return 0.0
        count = max(1, int(round(self.distinct_addresses * top_fraction)))
        covered = sum(
            mispredicts
            for _, mispredicts in self._mispredicts.most_common(count)
        )
        return covered / self.total_mispredicts

    def concentration_curve(
        self, fractions: Tuple[float, ...] = (0.01, 0.05, 0.1, 0.25, 0.5)
    ) -> List[Tuple[float, float]]:
        """(fraction of branches, share of mispredicts) sample points."""
        return [
            (fraction, self.concentration(fraction)) for fraction in fractions
        ]

    def report(self, title: str = "mispredict profile", top: int = 8) -> str:
        lines = [
            f"== {title} ==",
            f"distinct branch addresses: {self.distinct_addresses}",
            f"addresses ever mispredicting: {self.mispredicting_addresses}",
            f"total mispredicts: {self.total_mispredicts}",
            "concentration:",
        ]
        for fraction, share in self.concentration_curve():
            lines.append(
                f"  top {fraction:5.1%} of branches -> {share:6.1%} of mispredicts"
            )
        lines.append(f"worst {top} branches:")
        for hot in self.top(top):
            lines.append(
                f"  {hot.address:#010x}  {hot.mispredicts:>6} mispredicts "
                f"/ {hot.executions:>7} executions ({hot.mispredict_rate:6.1%})"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Trace loading
# ----------------------------------------------------------------------


@dataclass
class TraceDocument:
    """A parsed, schema-validated JSONL trace file.

    Record order is preserved per type; ``header`` is the first line and
    ``summary`` (when the run finished cleanly) the last.
    """

    path: str
    header: Dict[str, object]
    branches: List[Dict[str, object]] = field(default_factory=list)
    intervals: List[Dict[str, object]] = field(default_factory=list)
    summary: Optional[Dict[str, object]] = None

    @property
    def sampled(self) -> bool:
        """True when only every N-th branch was recorded (``every > 1``)."""
        return self.header.get("every", 1) != 1

    @property
    def stats(self) -> Dict[str, object]:
        """The summary's ``comparable_stats`` slice (empty when absent)."""
        if self.summary is None:
            return {}
        return dict(self.summary.get("stats", {}))

    def telemetry(self):
        """Rebuild the run's telemetry registry from the summary."""
        from repro.obs.telemetry import Telemetry

        if self.summary is None:
            return Telemetry()
        return Telemetry.from_dict(self.summary.get("telemetry", {}))

    def aggregate(self) -> Dict[str, object]:
        """Recompute the accuracy invariants from the branch records."""
        from repro.obs.trace import aggregate_branch_records

        return aggregate_branch_records(self.branches)

    def reconcile(self) -> List[str]:
        """Diff the branch records against the summary (see
        :func:`repro.obs.trace.reconcile`); empty means clean."""
        from repro.obs.trace import reconcile

        if self.summary is None:
            return ["trace has no summary record (run did not finish?)"]
        return reconcile(self.header, self.branches, self.summary)


def load_trace(path: str, strict: bool = False) -> TraceDocument:
    """Parse and schema-validate a ``TraceWriter`` JSONL file.

    Raises :class:`repro.obs.trace.TraceSchemaError` on any malformed
    line (naming the line number and byte offset), a header/schema
    mismatch, or a missing header — except a malformed *final* line,
    the signature of a killed or crashed writer mid-record, which is
    silently dropped (the writer flushes per batch and on error-path
    exit, so that torn tail is the only damage a crash can leave).
    With *strict* — the CLI ``--strict`` mode — the torn tail raises
    too.
    """
    from repro.common.jsonl import format_location, iter_jsonl
    from repro.obs.trace import TraceSchemaError, validate_record

    header: Optional[Dict[str, object]] = None
    branches: List[Dict[str, object]] = []
    intervals: List[Dict[str, object]] = []
    summary: Optional[Dict[str, object]] = None
    for line_number, offset, obj in iter_jsonl(path, strict=strict,
                                               error=TraceSchemaError):
        record = validate_record(obj, line_number)
        kind = record["type"]
        where = format_location(path, line_number, offset)
        if kind == "header":
            if header is not None:
                raise TraceSchemaError(f"{where}: duplicate header record")
            header = record
        elif header is None:
            raise TraceSchemaError(f"{where}: {kind} record before header")
        elif kind == "branch":
            branches.append(record)
        elif kind == "interval":
            intervals.append(record)
        else:
            summary = record
    if header is None:
        raise TraceSchemaError(f"{path}: no header record")
    return TraceDocument(path=str(path), header=header, branches=branches,
                         intervals=intervals, summary=summary)
