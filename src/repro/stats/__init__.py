"""Statistics, reporting and per-branch analysis."""

from repro.stats.analysis import HotBranch, MispredictProfile
from repro.stats.metrics import (
    MISPREDICT_CLASSES,
    MispredictClass,
    RunStats,
    classify,
)

__all__ = [
    "HotBranch",
    "MispredictProfile",
    "MISPREDICT_CLASSES",
    "MispredictClass",
    "RunStats",
    "classify",
]
