"""Statistics, reporting and per-branch analysis."""

from repro.stats.analysis import (
    HotBranch,
    MispredictProfile,
    TraceDocument,
    load_trace,
)
from repro.stats.metrics import (
    MISPREDICT_CLASSES,
    MispredictClass,
    RunStats,
    classify,
)

__all__ = [
    "HotBranch",
    "MispredictProfile",
    "TraceDocument",
    "load_trace",
    "MISPREDICT_CLASSES",
    "MispredictClass",
    "RunStats",
    "classify",
]
