"""The column predictor (CPRED) with power prediction (sections IV, VI).

The CPRED is "indexed upon entering a new stream" and predicts, for that
stream: how many sequential searches will run before the taken branch
that leaves it, which BTB1 way (column) that branch occupies, and the
redirect address (with SKOOT incorporated, the target plus the skip
along the target stream).  A correct CPRED lets the pipeline re-index at
b2 instead of b5, predicting a taken branch every 2 cycles instead of 5.

It also predicts which auxiliary structures (PHT, perceptron, CTB) need
to be powered up in the target stream; structures a stream doesn't need
stay dark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.bits import fold_xor
from repro.configs.predictor import CpredConfig
from repro.structures.assoc import SetAssociativeTable

#: Power-mask bits: which auxiliary structures the stream needs.
POWER_PHT = 1
POWER_PERCEPTRON = 2
POWER_CTB = 4
POWER_ALL = POWER_PHT | POWER_PERCEPTRON | POWER_CTB


@dataclass
class CpredEntry:
    """One stream's learned exit: search count, way, redirect, power."""

    tag: int
    searches_to_taken: int
    way: int
    redirect_address: int
    power_mask: int = POWER_ALL


@dataclass
class CpredLookup:
    """Prediction-time snapshot of a CPRED probe for one stream."""

    hit: bool
    row: int = 0
    tag: int = 0
    searches_to_taken: int = 0
    way: int = 0
    redirect_address: int = 0
    power_mask: int = POWER_ALL


class ColumnPredictor:
    """Stream-indexed accelerator + power predictor."""

    def __init__(self, config: CpredConfig):
        config.validate()
        self.config = config
        self._row_bits = max(1, config.rows.bit_length() - 1)
        self._table: SetAssociativeTable[CpredEntry] = SetAssociativeTable(
            rows=config.rows, ways=config.ways, policy="lru"
        )
        self.lookups = 0
        self.hits = 0
        self.correct = 0
        self.wrong = 0
        self.trains = 0
        self.power_gated_lookups = 0
        self.power_gate_misses = 0

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    def row_of(self, stream_start: int) -> int:
        return fold_xor(stream_start >> 1, self._row_bits) % self.config.rows

    def tag_of(self, stream_start: int, context: int) -> int:
        return fold_xor(
            (stream_start >> 4) ^ (context * 0x1F7B), self.config.tag_bits
        )

    def lookup(self, stream_start: int, context: int) -> CpredLookup:
        """Probe on stream entry."""
        if not self.enabled:
            return CpredLookup(hit=False)
        self.lookups += 1
        row = self.row_of(stream_start)
        tag = self.tag_of(stream_start, context)
        found = self._table.find(row, lambda entry: entry.tag == tag)
        if found is None:
            return CpredLookup(hit=False, row=row, tag=tag)
        way, entry = found
        self._table.touch(row, way)
        self.hits += 1
        return CpredLookup(
            hit=True,
            row=row,
            tag=tag,
            searches_to_taken=entry.searches_to_taken,
            way=entry.way,
            redirect_address=entry.redirect_address,
            power_mask=entry.power_mask,
        )

    def resolve(self, lookup: CpredLookup, actual_way: int, actual_redirect: int) -> bool:
        """Score a CPRED hit once the stream's exit is known.

        Correct means the predicted column and redirect address match
        what the BTB search pipeline produced — only then may the early
        b2 re-index stand.
        """
        if not lookup.hit:
            return False
        is_correct = (
            lookup.way == actual_way and lookup.redirect_address == actual_redirect
        )
        if is_correct:
            self.correct += 1
        else:
            self.wrong += 1
        return is_correct

    def train(
        self,
        stream_start: int,
        context: int,
        searches_to_taken: int,
        way: int,
        redirect_address: int,
        power_mask: int,
    ) -> None:
        """Learn/refresh a stream exit when its taken branch is found."""
        if not self.enabled:
            return
        row = self.row_of(stream_start)
        tag = self.tag_of(stream_start, context)
        self._table.install(
            row,
            CpredEntry(
                tag=tag,
                searches_to_taken=searches_to_taken,
                way=way,
                redirect_address=redirect_address,
                power_mask=power_mask,
            ),
            match=lambda entry: entry.tag == tag,
        )
        self.trains += 1

    def allows_power(self, lookup: CpredLookup, structure_bit: int) -> bool:
        """Whether *structure_bit* is powered for the stream.

        Without a CPRED hit everything stays powered (no information to
        gate on); with a hit, only predicted-needed structures are up.
        """
        if not self.enabled or not lookup.hit:
            return True
        allowed = bool(lookup.power_mask & structure_bit)
        if not allowed:
            self.power_gated_lookups += 1
        return allowed

    def note_power_gate_miss(self) -> None:
        """A gated-off structure turned out to be needed."""
        self.power_gate_misses += 1

    @property
    def occupancy(self) -> int:
        return self._table.occupancy()
