"""The column predictor (CPRED) with power prediction (sections IV, VI).

The CPRED is "indexed upon entering a new stream" and predicts, for that
stream: how many sequential searches will run before the taken branch
that leaves it, which BTB1 way (column) that branch occupies, and the
redirect address (with SKOOT incorporated, the target plus the skip
along the target stream).  A correct CPRED lets the pipeline re-index at
b2 instead of b5, predicting a taken branch every 2 cycles instead of 5.

It also predicts which auxiliary structures (PHT, perceptron, CTB) need
to be powered up in the target stream; structures a stream doesn't need
stay dark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.bits import bit_folder
from repro.common.slots import add_slots
from repro.configs.predictor import CpredConfig
from repro.structures.assoc import SetAssociativeTable

#: Power-mask bits: which auxiliary structures the stream needs.
POWER_PHT = 1
POWER_PERCEPTRON = 2
POWER_CTB = 4
POWER_ALL = POWER_PHT | POWER_PERCEPTRON | POWER_CTB


@add_slots
@dataclass
class CpredEntry:
    """One stream's learned exit: search count, way, redirect, power."""

    tag: int
    searches_to_taken: int
    way: int
    redirect_address: int
    power_mask: int = POWER_ALL


@add_slots
@dataclass
class CpredLookup:
    """Prediction-time snapshot of a CPRED probe for one stream."""

    hit: bool
    row: int = 0
    tag: int = 0
    searches_to_taken: int = 0
    way: int = 0
    redirect_address: int = 0
    power_mask: int = POWER_ALL


class ColumnPredictor:
    """Stream-indexed accelerator + power predictor."""

    def __init__(self, config: CpredConfig):
        config.validate()
        self.config = config
        #: Bound once at construction; the config is never toggled live.
        self.enabled = config.enabled
        self._row_bits = max(1, config.rows.bit_length() - 1)
        self._row_fold = bit_folder(self._row_bits)
        self._tag_fold = bit_folder(config.tag_bits)
        # Fold constants for the inlined lookup()/train() XOR loops.
        self._row_count = config.rows
        self._row_fold_mask = (1 << self._row_bits) - 1
        self._tag_bits = config.tag_bits
        self._tag_fold_mask = (1 << config.tag_bits) - 1
        self._table: SetAssociativeTable[CpredEntry] = SetAssociativeTable(
            rows=config.rows, ways=config.ways, policy="lru"
        )
        self.lookups = 0
        self.hits = 0
        self.correct = 0
        self.wrong = 0
        self.trains = 0
        self.power_gated_lookups = 0
        self.power_gate_misses = 0

    def row_of(self, stream_start: int) -> int:
        return self._row_fold(stream_start >> 1) % self.config.rows

    def tag_of(self, stream_start: int, context: int) -> int:
        return self._tag_fold((stream_start >> 4) ^ (context * 0x1F7B))

    def _index_and_tag(self, stream_start: int, context: int):
        """row_of + tag_of in one call with the XOR folds inlined (the
        lookup/train hot paths run this once per stream)."""
        row_bits = self._row_bits
        fold_mask = self._row_fold_mask
        value = stream_start >> 1
        row = 0
        while value:
            row ^= value & fold_mask
            value >>= row_bits
        row %= self._row_count
        tag_bits = self._tag_bits
        fold_mask = self._tag_fold_mask
        value = (stream_start >> 4) ^ (context * 0x1F7B)
        tag = 0
        while value:
            tag ^= value & fold_mask
            value >>= tag_bits
        return row, tag

    def lookup(self, stream_start: int, context: int) -> CpredLookup:
        """Probe on stream entry."""
        if not self.enabled:
            return CpredLookup(hit=False)
        self.lookups += 1
        row, tag = self._index_and_tag(stream_start, context)
        # Hot path (once per stream): scan the live row directly instead
        # of building a per-call match closure.
        found = None
        for way, entry in enumerate(self._table.row_ref(row)):
            if entry is not None and entry.tag == tag:
                found = (way, entry)
                break
        if found is None:
            return CpredLookup(hit=False, row=row, tag=tag)
        way, entry = found
        self._table.policy(row).touch(way)
        self.hits += 1
        return CpredLookup(
            hit=True,
            row=row,
            tag=tag,
            searches_to_taken=entry.searches_to_taken,
            way=entry.way,
            redirect_address=entry.redirect_address,
            power_mask=entry.power_mask,
        )

    def resolve(self, lookup: CpredLookup, actual_way: int, actual_redirect: int) -> bool:
        """Score a CPRED hit once the stream's exit is known.

        Correct means the predicted column and redirect address match
        what the BTB search pipeline produced — only then may the early
        b2 re-index stand.
        """
        if not lookup.hit:
            return False
        is_correct = (
            lookup.way == actual_way and lookup.redirect_address == actual_redirect
        )
        if is_correct:
            self.correct += 1
        else:
            self.wrong += 1
        return is_correct

    def train(
        self,
        stream_start: int,
        context: int,
        searches_to_taken: int,
        way: int,
        redirect_address: int,
        power_mask: int,
    ) -> None:
        """Learn/refresh a stream exit when its taken branch is found."""
        if not self.enabled:
            return
        row, tag = self._index_and_tag(stream_start, context)
        self._table.install(
            row,
            CpredEntry(
                tag=tag,
                searches_to_taken=searches_to_taken,
                way=way,
                redirect_address=redirect_address,
                power_mask=power_mask,
            ),
            match=lambda entry: entry.tag == tag,
        )
        self.trains += 1

    def allows_power(self, lookup: CpredLookup, structure_bit: int) -> bool:
        """Whether *structure_bit* is powered for the stream.

        Without a CPRED hit everything stays powered (no information to
        gate on); with a hit, only predicted-needed structures are up.
        """
        if not self.enabled or not lookup.hit:
            return True
        allowed = bool(lookup.power_mask & structure_bit)
        if not allowed:
            self.power_gated_lookups += 1
        return allowed

    def note_power_gate_miss(self) -> None:
        """A gated-off structure turned out to be needed."""
        self.power_gate_misses += 1

    @property
    def occupancy(self) -> int:
        return self._table.occupancy()

    def component_counters(self) -> dict:
        """Native statistics, harvested by the telemetry layer."""
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "correct": self.correct,
            "wrong": self.wrong,
            "trains": self.trains,
            "power_gated_lookups": self.power_gated_lookups,
            "power_gate_misses": self.power_gate_misses,
            "occupancy": self.occupancy,
        }
