"""The composed asynchronous lookahead branch predictor (sections III-VI).

:class:`LookaheadBranchPredictor` assembles every structure of the z15
design and models its *stream-based* operation: the predictor holds a
search address, walks 64-byte lines looking for upcoming branches in the
BTB1, predicts direction (figure 8) and target (figure 9) for each hit,
redirects itself on predicted-taken branches, primes itself from the
BTB2 when content appears to be missing, and applies every table update
non-speculatively when branches complete, ``completion_delay`` branches
after prediction (through the GPQ).

The functional driving model: the engine feeds executed branches in
program order; for each one the predictor walks its search from wherever
it was to the branch's address, reproducing empty searches, SKOOT skips,
BTB2 triggers, aliased "bad" predictions and the hit/surprise decision
exactly as the search pipeline would encounter them on the resolved
path.  See DESIGN.md for the documented simplifications (GPV repair,
walk capping).

SMT: the search address, stream state, GPV and CRS stacks are kept per
thread (each thread follows its own control flow); every prediction
table is shared between threads, as on the hardware.  In SMT2 the
threads alternate on the single search port — a timing property the
cycle engine models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.addresses import line_of, lines_between
from repro.common.slots import add_slots
from repro.configs.predictor import PredictorConfig
from repro.core.btb1 import Btb1, BtbHit
from repro.core.btb2 import Btb2System
from repro.core.cpred import (
    POWER_CTB,
    POWER_PERCEPTRON,
    POWER_PHT,
    ColumnPredictor,
    CpredLookup,
)
from repro.core.crs import CallReturnStack
from repro.core.ctb import ChangingTargetBuffer
from repro.core.direction import DirectionLogic
from repro.core.entries import BtbEntry
from repro.core.gpq import GlobalPredictionQueue, PredictionRecord
from repro.core.gpv import GlobalPathVector
from repro.core.perceptron import Perceptron
from repro.core.providers import DirectionProvider, TargetProvider
from repro.core.spec import SpeculativeOverlay, sbht_key, spht_key
from repro.core.tage import LONG, SHORT, TagePht
from repro.core.target import TargetLogic
from repro.isa.dynamic import DynamicBranch
from repro.isa.instructions import static_guess_taken, static_target_known
from repro.structures.queues import BoundedQueue
from repro.structures.saturating import TwoBitDirectionCounter


@add_slots
@dataclass
class SearchTrace:
    """Search-pipeline events observed while reaching one branch."""

    lines_searched: int = 0
    lines_skipped_by_skoot: int = 0
    empty_searches: int = 0
    btb2_triggers: int = 0
    bad_predictions_removed: int = 0
    bad_taken_restarts: int = 0
    skoot_overshoot: bool = False
    walk_capped: bool = False
    cpred_accelerated: bool = False
    stream_searches: int = 0


@add_slots
@dataclass
class PredictionOutcome:
    """Per-branch result handed back to the driving engine."""

    record: PredictionRecord
    trace: SearchTrace

    @property
    def dynamic(self) -> bool:
        return self.record.dynamic

    @property
    def mispredicted(self) -> bool:
        return self.record.mispredicted


@add_slots
@dataclass
class _Stream:
    """State of the instruction stream currently being searched."""

    start_address: int
    context: int
    #: BTB1 entry of the taken branch whose target opened this stream;
    #: it owns the SKOOT field describing this stream's empty lead-in.
    opener: Optional[BtbEntry] = None
    pending_skip: int = 0
    first_branch_trained: bool = False
    searches_done: int = 0
    needed_power_mask: int = 0
    cpred_lookup: CpredLookup = field(default_factory=lambda: CpredLookup(hit=False))


@add_slots
@dataclass
class _ThreadState:
    """Per-SMT-thread front-end state (search point, path history)."""

    search_address: int
    context: int
    stream: _Stream
    gpv: GlobalPathVector


@add_slots
@dataclass
class _InstallCommand:
    """One write-queue item: a pending BTB1 install."""

    address: int
    context: int
    entry: BtbEntry


class LookaheadBranchPredictor:
    """The full z15-style branch prediction logic (BPL)."""

    #: Which structure implementation backs this predictor; the array
    #: backend (:mod:`repro.engine.array`) overrides this and the
    #: ``_make_*`` factories below.
    backend = "object"

    def __init__(self, config: PredictorConfig):
        config.validate()
        self.config = config
        self.btb1 = self._make_btb1(config.btb1)
        self.btb2: Optional[Btb2System] = (
            self._make_btb2(config.btb2) if config.btb2 is not None else None
        )
        self.tage = self._make_tage(config.pht, config.gpv_bits_per_branch)
        gpv_width = config.gpv_depth * config.gpv_bits_per_branch
        self.perceptron = self._make_perceptron(config.perceptron, gpv_width)
        self.sbht = SpeculativeOverlay(config.speculative, "sbht")
        self.spht = SpeculativeOverlay(config.speculative, "spht")
        self.ctb = ChangingTargetBuffer(config.ctb, config.gpv_bits_per_branch)
        self.crs = CallReturnStack(config.crs)
        self.cpred = ColumnPredictor(config.cpred)
        self.gpq = GlobalPredictionQueue(config.gpq_capacity)
        self.direction_logic = DirectionLogic(
            self.tage, self.perceptron, self.sbht, self.spht, self.cpred
        )
        self.target_logic = TargetLogic(self.ctb, self.crs, self.cpred)
        self.write_queue: BoundedQueue[_InstallCommand] = BoundedQueue(
            config.write_queue_capacity, name="write-queue"
        )
        self._line = config.btb1.line_size
        self._threads: Dict[int, _ThreadState] = {}
        self._staging_drain_countdown: Optional[int] = None
        # Statistics
        self.predictions = 0
        self.dynamic_predictions = 0
        self.surprise_branches = 0
        self.restarts = 0
        self.context_switches = 0
        self.write_queue_drops = 0
        self.skipped_indirect_installs = 0

    # ------------------------------------------------------------------
    # Structure factories (the backend seam)
    # ------------------------------------------------------------------
    # Subclasses substitute array-backed structure twins here; the
    # prediction logic above never needs to know which backend it runs.

    def _make_btb1(self, config) -> Btb1:
        return Btb1(config)

    def _make_btb2(self, config) -> Btb2System:
        # Bound after _make_btb1: the BTB2 holds a reference to the BTB1
        # it stages lines into.
        return Btb2System(config, self.btb1)

    def _make_tage(self, config, gpv_bits_per_branch: int) -> TagePht:
        return TagePht(config, gpv_bits_per_branch)

    def _make_perceptron(self, config, gpv_width: int) -> Perceptron:
        return Perceptron(config, gpv_width)

    # ------------------------------------------------------------------
    # Per-thread state access
    # ------------------------------------------------------------------

    def _thread_state(self, thread: int) -> _ThreadState:
        state = self._threads.get(thread)
        if state is None:
            state = _ThreadState(
                search_address=0,
                context=0,
                stream=_Stream(start_address=0, context=0),
                gpv=GlobalPathVector(
                    self.config.gpv_depth, self.config.gpv_bits_per_branch
                ),
            )
            self._threads[thread] = state
        return state

    @property
    def gpv(self) -> GlobalPathVector:
        """Thread 0's global path vector (single-thread convenience)."""
        return self._thread_state(0).gpv

    # ------------------------------------------------------------------
    # Synchronisation points
    # ------------------------------------------------------------------

    def restart(self, address: int, context: int = 0, thread: int = 0) -> None:
        """Full restart: re-synchronise one thread's search with
        instruction fetch (after a pipeline flush or at run start)."""
        state = self._thread_state(thread)
        state.search_address = address
        state.context = context
        self.restarts += 1
        self.crs.flush_prediction_stack(thread)
        if self.btb2 is not None:
            self.btb2.reset_empty_counter()
        self._begin_stream(state, address, context, opener=None)

    def context_switch(self, address: int, context: int, thread: int = 0) -> None:
        """A context-changing event: proactively prime the BTB1 for the
        new context from the BTB2 (section III), then restart."""
        self.context_switches += 1
        if self.btb2 is not None:
            self.btb2.note_context_switch(address, context)
            self.btb2.drain_staging()
        self.restart(address, context, thread)

    def _begin_stream(
        self,
        state: _ThreadState,
        start: int,
        context: int,
        opener: Optional[BtbEntry],
    ) -> None:
        pending_skip = 0
        if (
            self.config.skoot_enabled
            and opener is not None
            and opener.skoot is not None
        ):
            pending_skip = opener.skoot
        state.stream = _Stream(
            start_address=start,
            context=context,
            opener=opener,
            pending_skip=pending_skip,
            cpred_lookup=self.cpred.lookup(start, context),
        )

    # ------------------------------------------------------------------
    # Main per-branch step
    # ------------------------------------------------------------------

    def predict_and_resolve(self, branch: DynamicBranch) -> PredictionOutcome:
        """Predict the next executed branch, resolve it, and retire due
        completions.  The engine guarantees per-thread program order and
        globally monotonic sequence numbers."""
        self.predictions += 1
        state = self._threads.get(branch.thread)
        if state is None:
            state = self._thread_state(branch.thread)
        trace = SearchTrace()
        # The staging queue drains through the write port continuously
        # (up to one entry per cycle; several cycles pass per branch).
        # The queue is empty for most branches; the truthiness guard
        # skips the no-op drain call on the hot path.
        btb2 = self.btb2
        if (
            btb2 is not None
            and self._staging_drain_countdown is None
            and btb2.staging
        ):
            btb2.drain_staging(limit=2 * self.config.write_drain_per_step)
        hit = self._walk_to(state, branch.address, branch.context, trace)
        trace.stream_searches = state.stream.searches_done

        if hit is not None:
            record = self._predict_dynamic(state, branch, hit, trace)
        else:
            record = self._predict_surprise(state, branch, trace)

        # record.resolve() inlined (two plain stores, once per branch).
        record.actual_taken = branch.taken
        record.actual_target = branch.target
        self._after_resolution(state, branch, record, hit)

        forced = self.gpq.push(record)
        if forced is not None:
            self._apply_update(forced)
        completed = branch.sequence - self.config.completion_delay
        for due in self.gpq.completions_due(completed):
            self._apply_update(due)

        return PredictionOutcome(record=record, trace=trace)

    def finalize(self) -> None:
        """End of run: complete every in-flight prediction."""
        for record in self.gpq.drain():
            self._apply_update(record)
        self._drain_write_queue(limit=len(self.write_queue))

    # ------------------------------------------------------------------
    # The search walk
    # ------------------------------------------------------------------

    def _walk_to(
        self,
        state: _ThreadState,
        branch_address: int,
        context: int,
        trace: SearchTrace,
    ) -> Optional[BtbHit]:
        """Advance one thread's search to the branch's address.

        Returns the BTB1 hit for the branch, or None (surprise).  All the
        search-pipeline side effects — empty-search counting and BTB2
        triggers, SKOOT skipping, bad-prediction removal — happen here.
        """
        line_size = self._line
        stream = state.stream

        # SKOOT: skip the known-empty lead-in of a fresh stream.
        if stream.pending_skip:
            first_line = (
                line_of(stream.start_address, line_size)
                + stream.pending_skip * line_size
            )
            if branch_address < first_line:
                # The skip overshot a (newly appeared) branch.
                trace.skoot_overshoot = True
                stream.pending_skip = 0
                return None
            if state.search_address < first_line:
                trace.lines_skipped_by_skoot += stream.pending_skip
                state.search_address = first_line
            stream.pending_skip = 0

        if branch_address < state.search_address:
            # The search ran past the branch (e.g. after a SKOOT
            # overshoot already consumed): surprise.
            return None

        # Cap pathological sequential gaps (documented approximation).
        gap = lines_between(state.search_address, branch_address, line_size)
        cap = self.config.search_walk_cap
        if gap > cap:
            skipped = gap - cap
            trace.walk_capped = True
            trace.lines_searched += skipped
            trace.empty_searches += skipped
            stream.searches_done += skipped
            if self.btb2 is not None:
                self.btb2.reset_empty_counter()
            state.search_address = (
                line_of(branch_address, line_size) - cap * line_size
            )

        target_line = line_of(branch_address, line_size)
        btb2 = self.btb2
        search_line = self.btb1.search_line
        result: Optional[BtbHit] = None
        while True:
            search_address = state.search_address
            line_base = search_address - (search_address % line_size)
            min_offset = search_address - line_base
            hits = search_line(line_base, context, min_offset)
            trace.lines_searched += 1
            stream.searches_done += 1

            if hits:
                if line_base == target_line:
                    # Hits are offset-ordered: everything before the
                    # branch is bad, an exact match is the prediction,
                    # later offsets stay for the redirected next search.
                    for candidate in hits:
                        hit_address = candidate.address
                        if hit_address < branch_address:
                            self._handle_bad_prediction(candidate, trace)
                        elif hit_address == branch_address:
                            result = candidate
                            break
                        else:
                            break
                else:
                    # A line strictly before the target line: every hit
                    # precedes the branch, so all are bad predictions.
                    for bad in hits:
                        self._handle_bad_prediction(bad, trace)
            else:
                trace.empty_searches += 1

            if btb2 is not None:
                fired = btb2.note_search_outcome(
                    line_base, context, hit=bool(hits)
                )
                if fired:
                    trace.btb2_triggers += 1
                    self._staging_drain_countdown = self.config.btb2_visibility_lines
                if self._staging_drain_countdown is not None:
                    if self._staging_drain_countdown <= 0:
                        btb2.drain_staging()
                        self._staging_drain_countdown = None
                    else:
                        self._staging_drain_countdown -= 1

            if line_base == target_line:
                break
            state.search_address = line_base + line_size

        # Transfer latency modelling ends with the walk: anything still
        # staged becomes visible before the next branch.
        if self.btb2 is not None and self._staging_drain_countdown is not None:
            self.btb2.drain_staging()
            self._staging_drain_countdown = None
        return result

    def _handle_bad_prediction(self, bad: BtbHit, trace: SearchTrace) -> None:
        """An entry matched where no branch exists (aliasing / stale
        content): the IDU detects it, restarts the front end, and the
        entry is removed from the BTB (section IV)."""
        would_redirect = bad.entry.is_unconditional or bad.entry.bht.taken
        self.btb1.remove(bad)
        trace.bad_predictions_removed += 1
        if would_redirect:
            trace.bad_taken_restarts += 1

    # ------------------------------------------------------------------
    # Dynamic prediction (BTB1 hit)
    # ------------------------------------------------------------------

    def _predict_dynamic(
        self,
        state: _ThreadState,
        branch: DynamicBranch,
        hit: BtbHit,
        trace: SearchTrace,
    ) -> PredictionRecord:
        self.dynamic_predictions += 1
        entry = hit.entry
        stream = state.stream
        gpv_snapshot = state.gpv.snapshot()

        decision = self.direction_logic.decide(
            hit, state.gpv, branch.sequence, stream.cpred_lookup
        )
        predicted_target: Optional[int] = None
        target_provider = TargetProvider.BTB1
        ctb_lookup = None
        crs_prediction = None
        ctb_powered = True
        if decision.taken:
            target_decision = self.target_logic.decide(
                hit,
                branch.context,
                gpv_snapshot,
                stream.cpred_lookup,
                thread=branch.thread,
            )
            predicted_target = target_decision.target
            target_provider = target_decision.provider
            ctb_lookup = target_decision.ctb_lookup
            crs_prediction = target_decision.crs_prediction
            ctb_powered = target_decision.ctb_powered

        record = PredictionRecord(
            sequence=branch.sequence,
            address=branch.address,
            context=branch.context,
            thread=branch.thread,
            kind=branch.kind,
            length=branch.instruction.length,
            dynamic=True,
            predicted_taken=decision.taken,
            predicted_target=predicted_target,
            direction_provider=decision.provider,
            target_provider=target_provider,
            alternate_taken=decision.alternate_taken,
            alternate_provider=decision.alternate_provider,
            gpv_snapshot=gpv_snapshot,
            btb_row=hit.row,
            btb_way=hit.way,
            btb_tag=entry.tag,
            btb_offset=entry.offset,
            bidirectional_at_prediction=entry.bidirectional,
            multi_target_at_prediction=entry.multi_target,
            marked_return_at_prediction=entry.return_offset is not None,
            blacklisted_at_prediction=entry.crs_blacklisted,
            tage=decision.tage_snapshot,
            perceptron=decision.perceptron_lookup,
            ctb=ctb_lookup,
            crs=crs_prediction,
            cpred=stream.cpred_lookup,
            pht_powered=decision.pht_powered,
            perceptron_powered=decision.perceptron_powered,
            ctb_powered=ctb_powered,
        )

        # Stream bookkeeping: power needs and SKOOT training.
        if entry.may_use_direction_aux:
            stream.needed_power_mask |= POWER_PHT | POWER_PERCEPTRON
        if entry.may_use_target_aux:
            stream.needed_power_mask |= POWER_CTB
        self._train_opener_skoot(state, branch.address)

        if decision.taken:
            assert predicted_target is not None
            # Prediction-side CRS push (after any stack use by figure 9).
            self.crs.note_predicted_taken(
                branch.address,
                predicted_target,
                branch.next_sequential,
                thread=branch.thread,
            )
            # CPRED: score and retrain this stream's exit.
            redirect = self._effective_redirect(predicted_target, entry)
            trace.cpred_accelerated = self.cpred.resolve(
                stream.cpred_lookup, hit.way, redirect
            )
            self.cpred.train(
                stream.start_address,
                branch.context,
                searches_to_taken=stream.searches_done,
                way=hit.way,
                redirect_address=redirect,
                power_mask=stream.needed_power_mask,
            )
        record.crs_stack_snapshot = self.crs.snapshot_prediction_stack(
            branch.thread
        )
        return record

    def _effective_redirect(self, target: int, entry: BtbEntry) -> int:
        """Where the next stream's first search lands: the target, or the
        SKOOT-skipped line along the target stream."""
        if (
            self.config.skoot_enabled
            and entry.skoot is not None
            and entry.skoot > 0
        ):
            return line_of(target, self._line) + entry.skoot * self._line
        return target

    def _train_opener_skoot(
        self, state: _ThreadState, first_branch_address: int
    ) -> None:
        """Train the previous stream-ender's SKOOT with the observed skip
        to this stream's first predictable branch."""
        stream = state.stream
        if stream.first_branch_trained:
            return
        stream.first_branch_trained = True
        if not self.config.skoot_enabled or stream.opener is None:
            return
        if first_branch_address < stream.start_address:
            return
        skip = lines_between(stream.start_address, first_branch_address, self._line)
        stream.opener.train_skoot(skip, self.config.skoot_max)

    # ------------------------------------------------------------------
    # Surprise prediction (BTB1 miss)
    # ------------------------------------------------------------------

    def _predict_surprise(
        self, state: _ThreadState, branch: DynamicBranch, trace: SearchTrace
    ) -> PredictionRecord:
        self.surprise_branches += 1
        instruction = branch.instruction
        guessed_taken = static_guess_taken(instruction)
        predicted_target: Optional[int] = None
        target_provider = TargetProvider.NONE
        if guessed_taken and static_target_known(instruction):
            predicted_target = instruction.static_target
            target_provider = TargetProvider.STATIC_RELATIVE

        # A disruptive surprise: guessed taken, or will resolve taken.
        if self.btb2 is not None and (guessed_taken or branch.taken):
            self.btb2.note_surprise_branch(
                branch.sequence, branch.address, branch.context
            )

        # A taken (or installed-to-be) surprise still bounds the previous
        # stream's SKOOT skip — it will be predictable after install.
        if guessed_taken or branch.taken:
            self._train_opener_skoot(state, branch.address)

        return PredictionRecord(
            sequence=branch.sequence,
            address=branch.address,
            context=branch.context,
            thread=branch.thread,
            kind=branch.kind,
            length=instruction.length,
            dynamic=False,
            predicted_taken=guessed_taken,
            predicted_target=predicted_target,
            direction_provider=DirectionProvider.STATIC,
            target_provider=target_provider,
            gpv_snapshot=state.gpv.snapshot(),
            crs_stack_snapshot=self.crs.snapshot_prediction_stack(
                branch.thread
            ),
        )

    # ------------------------------------------------------------------
    # Resolution: re-synchronise the search with the resolved path
    # ------------------------------------------------------------------

    def _after_resolution(
        self,
        state: _ThreadState,
        branch: DynamicBranch,
        record: PredictionRecord,
        hit: Optional[BtbHit],
    ) -> None:
        """Redirect / restart this thread's search and repair speculative
        state."""
        correct_path = (
            record.predicted_taken == branch.taken
            and (not branch.taken or record.predicted_target == branch.target)
        )

        # Mispredicted branches install corrected SBHT/SPHT entries so
        # in-flight re-occurrences predict right before the BHT/PHT
        # updates land (section IV).
        if record.dynamic and record.direction_wrong and hit is not None:
            self._install_corrected_overlays(record, hit, branch)

        if branch.taken:
            state.gpv.record_taken(branch.address)

        if record.dynamic and correct_path:
            if branch.taken:
                assert hit is not None and branch.target is not None
                state.search_address = branch.target
                self._begin_stream(state, branch.target, branch.context, hit.entry)
            else:
                state.search_address = branch.address + 2
            return

        # Every other case is a restart of some flavour.  The CRS
        # prediction stack is repaired to its checkpoint at this branch
        # (the flush discards only wrong-path state, which the resolved-
        # path model never created).
        self.restarts += 1
        self.crs.restore_prediction_stack(record.crs_stack_snapshot,
                                          branch.thread)
        if self.btb2 is not None:
            self.btb2.reset_empty_counter()
        next_address = branch.next_address
        state.search_address = next_address
        opener = hit.entry if (hit is not None and branch.taken) else None
        self._begin_stream(state, next_address, branch.context, opener)

    def _install_corrected_overlays(
        self, record: PredictionRecord, hit: BtbHit, branch: DynamicBranch
    ) -> None:
        provider = record.direction_provider
        if provider in (DirectionProvider.BHT, DirectionProvider.SBHT):
            self.sbht.install(
                sbht_key(hit.row, hit.way, record.btb_tag, record.btb_offset),
                branch.taken,
                record.sequence,
            )
        elif provider in (
            DirectionProvider.PHT_SHORT,
            DirectionProvider.PHT_LONG,
            DirectionProvider.SPHT,
        ):
            snapshot = record.tage
            if snapshot is not None and snapshot.provider is not None:
                self.spht.install(
                    spht_key(
                        snapshot.provider,
                        snapshot.provider_row,
                        snapshot.provider_tag,
                    ),
                    branch.taken,
                    record.sequence,
                )

    # ------------------------------------------------------------------
    # Completion-time updates (the write pipeline)
    # ------------------------------------------------------------------

    def _apply_update(self, record: PredictionRecord) -> None:
        """Non-speculative updates for one completed (resolved) branch."""
        # The overlays are empty for most branches; the truthiness guard
        # skips two no-op retire calls per completion on the hot path.
        if self.sbht._entries:
            self.sbht.retire(record.sequence)
        if self.spht._entries:
            self.spht.retire(record.sequence)
        if record.dynamic:
            self._update_dynamic(record)
        else:
            self._update_surprise(record)
        self._drain_write_queue(limit=self.config.write_drain_per_step)

    def _update_dynamic(self, record: PredictionRecord) -> None:
        entry = self._refind_entry(record)
        actual_taken = bool(record.actual_taken)
        direction_wrong = record.predicted_taken != record.actual_taken

        if entry is not None:
            entry.bht.update(actual_taken)
            if direction_wrong and not entry.is_unconditional:
                entry.bidirectional = True

        # TAGE: provider-entry direction/usefulness update plus the
        # weak-confidence bookkeeping, then allocation on a wrong
        # direction.
        if record.tage is not None:
            self.tage.update(
                record.tage, actual_taken, self._tage_alternate(record)
            )
        unconditional = entry is not None and entry.is_unconditional
        if direction_wrong and not unconditional:
            mispredicting = None
            if record.direction_provider is DirectionProvider.PHT_SHORT:
                mispredicting = SHORT
            elif record.direction_provider is DirectionProvider.PHT_LONG:
                mispredicting = LONG
            self.tage.install_on_mispredict(
                record.address,
                record.gpv_snapshot,
                actual_taken,
                mispredicting,
            )
            # Hard-to-predict branches also contend for a perceptron
            # entry (section V).
            if record.perceptron is None or not record.perceptron.hit:
                self.perceptron.install(record.address)

        # Perceptron training: the provider's direction is the
        # perceptron's comparison point when the perceptron was only the
        # tracked alternate (section V).
        if record.perceptron is not None and record.perceptron.hit:
            if record.direction_provider is DirectionProvider.PERCEPTRON:
                comparison = record.alternate_taken
            else:
                comparison = record.predicted_taken
            self.perceptron.update(record.perceptron, actual_taken, comparison)

        # Target-side updates (figure 9's learning rules).
        if actual_taken and record.actual_target is not None:
            self._update_targets(record, entry)

        # CRS detection side runs for every completed resolved-taken
        # branch.
        if actual_taken and record.actual_target is not None:
            matched_offset = self.crs.observe_completed_taken(
                record.address,
                record.actual_target,
                record.next_sequential,
                thread=record.thread,
            )
            if entry is not None:
                if matched_offset is not None and entry.return_offset is None:
                    entry.return_offset = matched_offset
                if record.target_wrong and entry.crs_blacklisted:
                    if self.crs.consider_amnesty(matched_offset is not None):
                        entry.crs_blacklisted = False

    def _update_targets(
        self, record: PredictionRecord, entry: Optional[BtbEntry]
    ) -> None:
        actual_target = record.actual_target
        assert actual_target is not None
        if not record.target_wrong:
            return
        provider = record.target_provider
        if provider is TargetProvider.BTB1:
            if entry is not None:
                entry.target = actual_target
                entry.multi_target = True
            self.ctb.install(
                record.address, record.context, record.gpv_snapshot, actual_target
            )
        elif provider is TargetProvider.CTB and record.ctb is not None:
            self.ctb.correct_target(record.ctb, actual_target)
        elif provider is TargetProvider.CRS:
            self.crs.should_blacklist()
            if entry is not None:
                entry.crs_blacklisted = True

    def _update_surprise(self, record: PredictionRecord) -> None:
        """Completion of a surprise branch: queue its BTB1 install.

        Guessed-not-taken branches that resolved not taken are not
        installed (section IV)."""
        actual_taken = bool(record.actual_taken)
        guessed_taken = record.predicted_taken
        if not actual_taken and not guessed_taken:
            return
        target = record.actual_target if actual_taken else record.predicted_target
        if target is None:
            # Guessed-taken indirect that resolved not taken: no target
            # to install.
            self.skipped_indirect_installs += 1
            return
        entry = BtbEntry(
            tag=0,
            offset=0,
            length=record.length,
            kind=record.kind,
            target=target,
            bht=TwoBitDirectionCounter.for_direction(actual_taken),
        )
        command = _InstallCommand(
            address=record.address, context=record.context, entry=entry
        )
        if not self.write_queue.try_push(command):
            self.write_queue_drops += 1
        # CRS detection side also observes taken surprises.
        if actual_taken and record.actual_target is not None:
            matched_offset = self.crs.observe_completed_taken(
                record.address,
                record.actual_target,
                record.next_sequential,
                thread=record.thread,
            )
            if matched_offset is not None:
                entry.return_offset = matched_offset

    def _drain_write_queue(self, limit: int) -> None:
        for _ in range(limit):
            command = self.write_queue.try_pop()
            if command is None:
                return
            result = self.btb1.install(command.address, command.context, command.entry)
            if (
                result.installed
                and result.victim is not None
                and self.btb2 is not None
            ):
                self.btb2.handle_btb1_eviction(result.victim)

    # ------------------------------------------------------------------
    # Telemetry harvest
    # ------------------------------------------------------------------

    def component_counters(self) -> Dict[str, Dict[str, int]]:
        """Every structure's native statistics, keyed by the component
        prefix the telemetry layer files them under.

        These are the plain-int attributes the structures maintain
        unconditionally (no telemetry hook runs on the hot paths); the
        observability layer snapshots them here at harvest time.
        """
        counters = {
            "predictor": {
                "predictions": self.predictions,
                "dynamic_predictions": self.dynamic_predictions,
                "surprise_branches": self.surprise_branches,
                "restarts": self.restarts,
                "context_switches": self.context_switches,
                "skipped_indirect_installs": self.skipped_indirect_installs,
            },
            "btb1": self.btb1.component_counters(),
            "tage": self.tage.component_counters(),
            "perceptron": self.perceptron.component_counters(),
            "cpred": self.cpred.component_counters(),
            "crs": self.crs.component_counters(),
            "ctb": self.ctb.component_counters(),
            "gpq": self.gpq.component_counters(),
            "spec": {
                f"sbht_{key}": value
                for key, value in self.sbht.component_counters().items()
            },
            "write_queue": {
                "drops": self.write_queue_drops,
                "occupancy": len(self.write_queue),
            },
        }
        counters["spec"].update(
            {
                f"spht_{key}": value
                for key, value in self.spht.component_counters().items()
            }
        )
        if self.btb2 is not None:
            counters["btb2"] = self.btb2.component_counters()
        return counters

    # ------------------------------------------------------------------
    # Structural-invariant audit (repro.resilience)
    # ------------------------------------------------------------------

    def audit(self) -> List[str]:
        """Collect structural-invariant violations across every structure.

        Returns an empty list when the predictor is healthy.  This is
        the library home of the robustness suite's ``check_invariants``:
        the fault-injection framework runs it periodically to prove that
        injected faults stay *legal-but-wrong* — they may cost
        mispredicts, never corrupt the model's own bookkeeping.
        """
        violations: List[str] = list(self.btb1.audit())
        skoot_max = self.config.skoot_max
        for row, way, entry in self.btb1.entries():
            if entry.skoot is not None and not 0 <= entry.skoot <= skoot_max:
                violations.append(
                    f"btb1[row={row},way={way}] skoot {entry.skoot} outside "
                    f"[0, {skoot_max}]"
                )
        if self.btb2 is not None:
            violations.extend(self.btb2.audit())
        violations.extend(self.tage.audit())
        violations.extend(self.perceptron.audit())
        violations.extend(self.ctb.audit())
        violations.extend(self.crs.audit())
        violations.extend(self.gpq.audit())
        if len(self.write_queue) > self.write_queue.capacity:
            violations.append(
                f"write queue occupancy {len(self.write_queue)} over "
                f"capacity {self.write_queue.capacity}"
            )
        return violations

    def _refind_entry(self, record: PredictionRecord) -> Optional[BtbEntry]:
        """Locate the predicted entry at update time; it may be gone."""
        entry = self.btb1.entry_at(record.btb_row, record.btb_way)
        if (
            entry is None
            or entry.tag != record.btb_tag
            or entry.offset != record.btb_offset
        ):
            return None
        return entry

    def _tage_alternate(self, record: PredictionRecord) -> Optional[bool]:
        """The alternate direction for TAGE usefulness accounting: the
        short table when the long table provided, else the BHT leg."""
        snapshot = record.tage
        if snapshot is None or snapshot.provider is None:
            return None
        if snapshot.provider == LONG:
            for table, taken, _weak in snapshot.weak_observations:
                if table == SHORT:
                    return taken
        if record.direction_provider in (
            DirectionProvider.PHT_SHORT,
            DirectionProvider.PHT_LONG,
        ):
            return record.alternate_taken
        # The PHT was not the overall provider; compare against the BHT
        # leg via the recorded alternate when available.
        return record.alternate_taken
