"""The perceptron auxiliary direction predictor (section V).

Introduced on z14 and carried into z15, the perceptron targets branches
"not otherwise predictable with sufficient accuracy by BHT or PHT
structures".  Faithfully modelled behaviours:

* 32 entries as 16 rows x 2 ways, shared between threads;
* a table of signed weights over GPV path-history bits; the sign of the
  weight sum is the direction, the magnitudes express correlation;
* 2:1 *virtualisation*: 34 GPV bits map onto 17 weights; a weight whose
  magnitude stays near zero is retargeted to its alternate GPV bit;
* replacement protected by a per-entry protection limit (decremented on
  each replacement attempt, replaceable only at zero) and a usefulness
  value (least-useful way chosen);
* the entry only *provides* the direction once its usefulness exceeds a
  global threshold; below a learning threshold usefulness grows even
  when both the perceptron and the alternate were wrong.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.bits import bit_folder
from repro.common.corruption import Corruption, flipped_bits
from repro.common.slots import add_slots
from repro.configs.predictor import PerceptronConfig
from repro.core.gpv import GlobalPathVector


@add_slots
@dataclass
class PerceptronEntry:
    """One perceptron: a tagged weight vector with replacement metadata."""

    address: int
    weights: List[int]
    #: Which GPV bit each weight currently observes (virtualisation map).
    mapping: List[int]
    usefulness: int = 0
    protection: int = 0
    updates_seen: int = 0

    def selected_bits(self, gpv_value: int) -> Tuple[int, ...]:
        """The GPV bits this entry's weights currently observe.

        *gpv_value* is the raw path-vector integer (LSB = bit 0), the
        hot-path representation used instead of a materialised tuple.
        """
        return tuple((gpv_value >> index) & 1 for index in self.mapping)

    def weight_sum(self, gpv_value: int) -> int:
        """Signed sum: each weight contributes +w when its GPV bit is 1
        and -w when it is 0 (the bit supplies the sign, section V)."""
        total = 0
        for weight, bit_index in zip(self.weights, self.mapping):
            if (gpv_value >> bit_index) & 1:
                total += weight
            else:
                total -= weight
        return total

    def predict(self, gpv_value: int) -> bool:
        """Direction = sign of the weight sum (>= 0 predicts taken)."""
        return self.weight_sum(gpv_value) >= 0


@add_slots
@dataclass
class PerceptronLookup:
    """Prediction-time snapshot stored in the GPQ."""

    hit: bool
    row: int = 0
    way: int = 0
    address: int = 0
    taken: Optional[bool] = None
    #: True when usefulness clears the provider threshold.
    useful: bool = False
    #: GPV value at prediction time (the whole vector as a raw integer,
    #: LSB = bit 0; training re-selects through the possibly-updated
    #: mapping).
    gpv_bits: int = 0


class Perceptron:
    """The 16x2 perceptron array with virtualised weights."""

    def __init__(self, config: PerceptronConfig, gpv_width: int):
        config.validate()
        self.config = config
        #: Bound once at construction; the config is never toggled live.
        self.enabled = config.enabled
        self.gpv_width = gpv_width
        self._row_bits = max(1, config.rows.bit_length() - 1)
        self._row_fold = bit_folder(self._row_bits)
        self._rows: List[List[Optional[PerceptronEntry]]] = [
            [None] * config.ways for _ in range(config.rows)
        ]
        self.lookups = 0
        self.hits = 0
        self.provider_hits = 0
        self.installs = 0
        self.install_rejects = 0
        self.virtualizations = 0

    # ------------------------------------------------------------------
    # Index math and virtualisation map
    # ------------------------------------------------------------------

    def row_of(self, address: int) -> int:
        """Indexed as a function of the BPL search address (section V)."""
        return self._row_fold(address >> 1) % self.config.rows

    def _initial_mapping(self) -> List[int]:
        """Primary GPV bit per weight: with 2:1 virtualisation weight *i*
        starts watching bit ``2i``; its alternate is ``2i + 1``."""
        stride = max(1, self.gpv_width // self.config.weight_count)
        return [
            (i * stride) % self.gpv_width for i in range(self.config.weight_count)
        ]

    def _alternate_bit(self, weight_index: int, current_bit: int) -> int:
        """The predetermined alternate GPV bit for a poorly-correlating
        weight (section V: "the perceptron tries a different
        predetermined bit in the GPV")."""
        return (current_bit + 1) % self.gpv_width

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def lookup(self, address: int, gpv: GlobalPathVector) -> PerceptronLookup:
        """Probe for *address*; the entry provides only when useful."""
        if not self.enabled:
            return PerceptronLookup(hit=False)
        self.lookups += 1
        # row_of inlined (one probe per predicted branch).
        row = self._row_fold(address >> 1) % self.config.rows
        gpv_bits = gpv.snapshot()
        for way, entry in enumerate(self._rows[row]):
            if entry is not None and entry.address == address:
                self.hits += 1
                useful = entry.usefulness >= self.config.provider_threshold
                if useful:
                    self.provider_hits += 1
                # entry.predict() inlined (one signed sum per probe hit).
                total = 0
                for weight, bit_index in zip(entry.weights, entry.mapping):
                    if (gpv_bits >> bit_index) & 1:
                        total += weight
                    else:
                        total -= weight
                return PerceptronLookup(
                    hit=True,
                    row=row,
                    way=way,
                    address=address,
                    taken=total >= 0,
                    useful=useful,
                    gpv_bits=gpv_bits,
                )
        return PerceptronLookup(hit=False, row=row, gpv_bits=gpv_bits)

    # ------------------------------------------------------------------
    # Completion-time training
    # ------------------------------------------------------------------

    def update(
        self,
        lookup: PerceptronLookup,
        actual_taken: bool,
        alternate_taken: Optional[bool],
    ) -> None:
        """Train weights and manage usefulness after resolution.

        Weight rule (section V): on a taken resolution every weight whose
        GPV bit is 1 is incremented and the rest decremented; on not
        taken, the reverse.  Usefulness: +1 when the perceptron beat the
        alternate, -1 when it lost; while below the learning threshold it
        also grows when both were wrong.
        """
        if not self.enabled or not lookup.hit:
            return
        entry = self._entry_at(lookup.row, lookup.way, lookup.address)
        if entry is None:
            return
        # Fused predict + train pass: the sum is accumulated from the
        # *pre-training* weight values while each weight is adjusted in
        # the same loop, which is exactly entry.predict() followed by
        # _train_weights() but with one iteration instead of two.
        gpv_value = lookup.gpv_bits
        limit = self.config.weight_limit
        floor = -limit
        weights = entry.weights
        total = 0
        for index, bit_index in enumerate(entry.mapping):
            weight = weights[index]
            # The extracted bit is exactly 0/1, so ==-comparing it with
            # *taken* (False==0, True==1) matches bool() coercion.
            if (gpv_value >> bit_index) & 1:
                total += weight
                strengthen = actual_taken
            else:
                total -= weight
                strengthen = not actual_taken
            if strengthen:
                if weight < limit:
                    weights[index] = weight + 1
            elif weight > floor:
                weights[index] = weight - 1
        perceptron_taken = total >= 0
        entry.updates_seen += 1
        perceptron_correct = perceptron_taken == actual_taken
        if alternate_taken is None:
            alternate_correct = None
        else:
            alternate_correct = alternate_taken == actual_taken
        if alternate_correct is not None:
            if perceptron_correct and not alternate_correct:
                entry.usefulness = min(
                    entry.usefulness + 1, (1 << self.config.usefulness_bits) - 1
                )
            elif not perceptron_correct and alternate_correct:
                entry.usefulness = max(entry.usefulness - 1, 0)
            elif (
                not perceptron_correct
                and not alternate_correct
                and entry.usefulness < self.config.learning_threshold
            ):
                entry.usefulness += 1
        self._maybe_virtualize(entry)

    def _maybe_virtualize(self, entry: PerceptronEntry) -> None:
        """Retarget near-zero weights to their alternate GPV bit."""
        if entry.updates_seen < self.config.virtualization_age:
            return
        threshold = self.config.virtualization_threshold
        for index, weight in enumerate(entry.weights):
            if abs(weight) <= threshold:
                entry.mapping[index] = self._alternate_bit(
                    index, entry.mapping[index]
                )
                entry.weights[index] = 0
                self.virtualizations += 1
        entry.updates_seen = 0

    # ------------------------------------------------------------------
    # Replacement
    # ------------------------------------------------------------------

    def install(self, address: int) -> bool:
        """Try to allocate an entry for a hard-to-predict branch.

        The least-useful way with protection 0 is replaced; every denied
        attempt decrements the candidates' protection (section V).
        """
        if not self.enabled:
            return False
        row = self.row_of(address)
        ways = self._rows[row]
        for way, entry in enumerate(ways):
            if entry is not None and entry.address == address:
                return False  # already present
        for way, entry in enumerate(ways):
            if entry is None:
                ways[way] = self._new_entry(address)
                self.installs += 1
                return True
        replaceable = [
            (entry.usefulness, way)
            for way, entry in enumerate(ways)
            if entry is not None and entry.protection == 0
        ]
        if replaceable:
            _, way = min(replaceable)
            ways[way] = self._new_entry(address)
            self.installs += 1
            return True
        for entry in ways:
            assert entry is not None
            entry.protection -= 1
        self.install_rejects += 1
        return False

    def _new_entry(self, address: int) -> PerceptronEntry:
        return PerceptronEntry(
            address=address,
            weights=[0] * self.config.weight_count,
            mapping=self._initial_mapping(),
            usefulness=0,
            protection=self.config.protection_limit,
        )

    def _entry_at(
        self, row: int, way: int, address: int
    ) -> Optional[PerceptronEntry]:
        entry = self._rows[row][way]
        if entry is None or entry.address != address:
            return None
        return entry

    @property
    def occupancy(self) -> int:
        return sum(
            1 for row in self._rows for entry in row if entry is not None
        )

    def component_counters(self) -> dict:
        """Native statistics, harvested by the telemetry layer."""
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "provider_hits": self.provider_hits,
            "installs": self.installs,
            "install_rejects": self.install_rejects,
            "virtualizations": self.virtualizations,
            "occupancy": self.occupancy,
        }

    # ------------------------------------------------------------------
    # Fault-injection & audit hooks (repro.resilience)
    # ------------------------------------------------------------------

    def corrupt(self, rng) -> Optional[Corruption]:
        """Perturb one live perceptron, keeping every field in range.

        Weight flips use an offset-binary encoding (``value + limit``)
        for the Hamming distance, matching how a sign-magnitude array
        would store them.
        """
        victims = [
            (row, way, entry)
            for row, ways in enumerate(self._rows)
            for way, entry in enumerate(ways)
            if entry is not None
        ]
        if not victims:
            return None
        row, way, entry = rng.choice(victims)
        field = rng.choice(("weight", "usefulness", "mapping"))
        limit = self.config.weight_limit
        if field == "weight":
            index = rng.randint(0, len(entry.weights) - 1)
            old = entry.weights[index]
            new = rng.randint(-limit, limit)
            if new == old:
                new = -old if old != 0 else limit
            entry.weights[index] = new
            bits = flipped_bits(old + limit, new + limit)
            field = f"weight[{index}]"
        elif field == "usefulness":
            maximum = (1 << self.config.usefulness_bits) - 1
            old = entry.usefulness
            entry.usefulness = old ^ rng.randint(1, maximum)
            bits = flipped_bits(old, entry.usefulness)
        else:
            index = rng.randint(0, len(entry.mapping) - 1)
            old = entry.mapping[index]
            new = rng.randint(0, self.gpv_width - 1)
            if new == old:
                new = self._alternate_bit(index, old)
            entry.mapping[index] = new
            bits = max(1, flipped_bits(old, new))
            field = f"mapping[{index}]"

        def _invalidate(rows=self._rows, row=row, way=way, entry=entry):
            if rows[row][way] is entry:
                rows[row][way] = None

        return Corruption(
            component="perceptron",
            location=f"row={row},way={way}",
            field=field,
            bits_flipped=bits,
            invalidate=_invalidate,
        )

    def audit(self) -> List[str]:
        """Structural-invariant check; returns violation strings."""
        violations: List[str] = []
        limit = self.config.weight_limit
        usefulness_max = (1 << self.config.usefulness_bits) - 1
        for row, ways in enumerate(self._rows):
            for way, entry in enumerate(ways):
                if entry is None:
                    continue
                where = f"perceptron[row={row},way={way}]"
                if len(entry.weights) != self.config.weight_count:
                    violations.append(
                        f"{where} has {len(entry.weights)} weights, "
                        f"expected {self.config.weight_count}"
                    )
                if len(entry.mapping) != self.config.weight_count:
                    violations.append(
                        f"{where} has {len(entry.mapping)} mapped bits, "
                        f"expected {self.config.weight_count}"
                    )
                for index, weight in enumerate(entry.weights):
                    if not -limit <= weight <= limit:
                        violations.append(
                            f"{where} weight[{index}] {weight} outside "
                            f"[-{limit}, {limit}]"
                        )
                for index, bit_index in enumerate(entry.mapping):
                    if not 0 <= bit_index < self.gpv_width:
                        violations.append(
                            f"{where} mapping[{index}] {bit_index} outside "
                            f"the {self.gpv_width}-bit GPV"
                        )
                if not 0 <= entry.usefulness <= usefulness_max:
                    violations.append(
                        f"{where} usefulness {entry.usefulness} outside "
                        f"[0, {usefulness_max}]"
                    )
                if entry.protection < 0:
                    violations.append(
                        f"{where} protection {entry.protection} negative"
                    )
        return violations
