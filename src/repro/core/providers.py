"""Provider identities for direction and target predictions.

Figure 8 of the paper selects the direction provider; figure 9 selects
the target provider.  The engines and benchmarks report accuracy broken
down by these.
"""

from __future__ import annotations

import enum


class DirectionProvider(enum.Enum):
    """Who supplied the direction of a prediction."""

    # Identity hash (a C-level slot) instead of Enum's Python-level
    # name hash: provider-keyed stats dicts hash these once per
    # predicted branch.  Member equality is identity either way.
    __hash__ = object.__hash__

    #: BTB1 entry marked unconditional — always taken.
    UNCONDITIONAL = "unconditional"
    #: The 2-bit BHT embedded in the BTB1.
    BHT = "bht"
    #: Speculative BHT overlay.
    SBHT = "sbht"
    #: Short-history TAGE PHT table (or the single tagged PHT pre-z15).
    PHT_SHORT = "pht-short"
    #: Long-history TAGE PHT table.
    PHT_LONG = "pht-long"
    #: Speculative PHT overlay.
    SPHT = "spht"
    #: Perceptron.
    PERCEPTRON = "perceptron"
    #: Decode-time static guess (surprise branches only).
    STATIC = "static"


class TargetProvider(enum.Enum):
    """Who supplied the target of a taken prediction."""

    __hash__ = object.__hash__

    #: Target field of the BTB1 entry.
    BTB1 = "btb1"
    #: Changing target buffer.
    CTB = "ctb"
    #: Call/return stack.
    CRS = "crs"
    #: Front-end computed target of a statically-guessed-taken relative
    #: branch (surprise branches only).
    STATIC_RELATIVE = "static-relative"
    #: No target available — statically guessed taken indirect surprise:
    #: the front end waits for the execution units.
    NONE = "none"


#: Direction providers that count as "dynamic" (BTB-based) predictions.
DYNAMIC_DIRECTION_PROVIDERS = frozenset(
    {
        DirectionProvider.UNCONDITIONAL,
        DirectionProvider.BHT,
        DirectionProvider.SBHT,
        DirectionProvider.PHT_SHORT,
        DirectionProvider.PHT_LONG,
        DirectionProvider.SPHT,
        DirectionProvider.PERCEPTRON,
    }
)
