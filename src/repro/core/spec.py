"""Speculative BHT / PHT overlays (SBHT / SPHT, section IV).

"Because there is a large gap in time between when branches are
predicted and when they are updated", a weak-state counter can be read
again before the strengthening update lands — the weak-taken loop branch
would flutter.  The SBHT/SPHT track weak occurrences of predictions
that, assumed correct, strengthen the state; mispredicted branches also
install corrected entries.  Entries are removed when the installing
branch completes or flushes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

from repro.configs.predictor import SpeculativeOverlayConfig


@dataclass
class OverlayEntry:
    """One speculative direction override."""

    key: Hashable
    taken: bool
    #: Dynamic sequence number of the branch instance that installed the
    #: entry; removal triggers at its completion/flush.
    installer_sequence: int


class SpeculativeOverlay:
    """A small fully-associative override table keyed by predictor entry.

    For the SBHT the key is the branch's BTB1 location; for the SPHT it
    is the (table, row, tag) identity of the PHT entry.  FIFO-evicting
    when full (assumption — the paper only says "a small number of
    entries").
    """

    def __init__(self, config: SpeculativeOverlayConfig, name: str):
        config.validate()
        self.config = config
        #: Bound once at construction; the config is never toggled live.
        self.enabled = config.enabled
        self.name = name
        self._entries: Dict[Hashable, OverlayEntry] = {}
        self._insertion_order: list = []
        self.installs = 0
        self.overrides = 0
        self.removals = 0

    def lookup(self, key: Hashable) -> Optional[bool]:
        """The overridden direction for *key*, or None."""
        if not self.enabled:
            return None
        entry = self._entries.get(key)
        if entry is None:
            return None
        self.overrides += 1
        return entry.taken

    def install(self, key: Hashable, taken: bool, installer_sequence: int) -> None:
        """Install or refresh an override."""
        if not self.enabled:
            return
        if key in self._entries:
            existing = self._entries[key]
            existing.taken = taken
            existing.installer_sequence = installer_sequence
            return
        if len(self._entries) >= self.config.entries:
            oldest_key = self._insertion_order.pop(0)
            self._entries.pop(oldest_key, None)
        self._entries[key] = OverlayEntry(
            key=key, taken=taken, installer_sequence=installer_sequence
        )
        self._insertion_order.append(key)
        self.installs += 1

    def retire(self, sequence: int) -> int:
        """Remove entries whose installer has completed; returns count."""
        if not self._entries:
            return 0
        stale = [
            key
            for key, entry in self._entries.items()
            if entry.installer_sequence <= sequence
        ]
        for key in stale:
            del self._entries[key]
            self._insertion_order.remove(key)
        self.removals += len(stale)
        return len(stale)

    def flush(self) -> None:
        """Pipeline flush: drop every speculative override."""
        self._entries.clear()
        self._insertion_order.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def component_counters(self) -> dict:
        """Native statistics, harvested by the telemetry layer."""
        return {
            "installs": self.installs,
            "overrides": self.overrides,
            "removals": self.removals,
            "live_entries": len(self._entries),
        }


def sbht_key(row: int, way: int, tag: int, offset: int) -> Tuple:
    """SBHT key: the BTB1 entry identity."""
    return ("sbht", row, way, tag, offset)


def spht_key(table: str, row: int, tag: int) -> Tuple:
    """SPHT key: the PHT entry identity."""
    return ("spht", table, row, tag)
