"""The level-1 branch target buffer (BTB1) with its embedded BHT.

"The bread and butter of the branch predictor is the BTB1, where the BHT
and BTB for the direction and target address respectively reside"
(section V).  The z15 BTB1 holds 16K branches as 2K logical rows of 8
ways; one row covers a 64-byte line of instruction address space and a
single search reads the whole row, predicting up to 8 branches per cycle
(section IV).

Entries are partially tagged: two different lines that fold to the same
(row, tag) pair alias, which is how predictions can appear "in the middle
of an instruction, or ... on a non-branch instruction" (section IV).  The
IDU detects those and calls :meth:`Btb1.remove`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.common.addresses import line_of
from repro.common.bits import bit_folder, mask
from repro.common.corruption import Corruption, flipped_bits
from repro.common.slots import add_slots
from repro.configs.predictor import Btb1Config
from repro.core.entries import BtbEntry
from repro.structures.assoc import SetAssociativeTable


class BtbHit:
    """A search hit: where the entry lives and the line it matched in.

    ``address`` is the branch address the hit *implies* — the searched
    line base plus the entry's stored offset.  For an aliased entry this
    differs from the address the entry was installed for.  (A plain
    slotted class rather than a dataclass: one instance is built per
    matching way per search, and the hand-written ``__init__`` computes
    ``address`` eagerly in the same call — the walk/direction/target
    paths read it several times per hit.  Treat instances as read-only.)
    """

    __slots__ = ("row", "way", "entry", "line_base", "address")

    def __init__(self, row: int, way: int, entry: BtbEntry, line_base: int):
        self.row = row
        self.way = way
        self.entry = entry
        self.line_base = line_base
        self.address = line_base + entry.offset

    @property
    def aliased(self) -> bool:
        """True when the hit comes from a different line than the entry
        was installed for (ground-truth check; hardware cannot tell)."""
        return self.entry.line_base != self.line_base


@add_slots
@dataclass
class InstallResult:
    """Outcome of an install attempt through the write port."""

    installed: bool
    duplicate: bool
    row: int
    way: Optional[int] = None
    victim: Optional[BtbEntry] = None


def _hit_offset(hit: BtbHit) -> int:
    """Sort key for the b3 in-line ordering stage (module level so the
    hot search loop does not rebuild a closure per call)."""
    return hit.entry.offset


class Btb1:
    """The level-1 BTB array plus index/tag math and install filtering."""

    def __init__(self, config: Btb1Config):
        config.validate()
        self.config = config
        self._row_bits = config.rows.bit_length() - 1
        # Index/tag constants, bound once (line_size and rows are
        # validated powers of two).
        self._line_shift = config.line_size.bit_length() - 1
        self._row_mask = mask(self._row_bits)
        self._tag_fold = bit_folder(config.tag_bits)
        # Fold constants for the fully-inlined search_line() XOR loop.
        self._tag_bits = config.tag_bits
        self._tag_fold_mask = mask(config.tag_bits)
        self._table: SetAssociativeTable[BtbEntry] = SetAssociativeTable(
            rows=config.rows, ways=config.ways, policy=config.policy
        )
        # Statistics
        self.searches = 0
        self.hit_searches = 0
        self.installs = 0
        self.duplicate_rejects = 0
        self.evictions = 0
        self.removals = 0
        # White-box verification taps (section VII): monitors attach
        # callables here to observe "internal signals".  Each is invoked
        # with keyword arguments describing the event.
        self.on_search = None
        self.on_install = None
        self.on_remove = None

    # ------------------------------------------------------------------
    # Index / tag math
    # ------------------------------------------------------------------

    def row_of(self, address: int) -> int:
        """Row selected by an address: low line-index bits."""
        return (address >> self._line_shift) & self._row_mask

    def tag_of(self, address: int, context: int) -> int:
        """Partial tag: line-index bits above the row index, folded with
        the address-space context."""
        high_bits = (address >> self._line_shift) >> self._row_bits
        return self._tag_fold(high_bits ^ (context * 0x9E37))

    # ------------------------------------------------------------------
    # Search (read) port
    # ------------------------------------------------------------------

    def search_line(
        self, line_base: int, context: int, min_offset: int = 0
    ) -> List[BtbHit]:
        """Search one 64-byte line: all tag-matching entries at or beyond
        *min_offset*, ordered by their in-line offset (the b3 ordering
        stage of the pipeline)."""
        line_shift = self._line_shift
        base = (line_base >> line_shift) << line_shift
        line_number = base >> line_shift
        row = line_number & self._row_mask
        # tag_of inlined down to the XOR-fold loop (one search per
        # predicted line; no fold-closure call).
        value = (line_number >> self._row_bits) ^ (context * 0x9E37)
        tag = 0
        tag_bits = self._tag_bits
        fold_mask = self._tag_fold_mask
        while value:
            tag ^= value & fold_mask
            value >>= tag_bits
        self.searches += 1
        # Hot path: inline the row scan over the live row list (called
        # once per searched line; row/tag math is inlined from
        # row_of/tag_of with the precomputed constants).
        hits = [
            BtbHit(row=row, way=way, entry=entry, line_base=base)
            for way, entry in enumerate(self._table.row_ref(row))
            if entry is not None
            and entry.tag == tag
            and entry.offset >= min_offset
        ]
        if hits:
            if len(hits) > 1:
                hits.sort(key=_hit_offset)
            self.hit_searches += 1
            touch = self._table.policy(row).touch
            for hit in hits:
                touch(hit.way)
        if self.on_search is not None:
            self.on_search(
                line_base=base, context=context, min_offset=min_offset, hits=hits
            )
        return hits

    def lookup(self, address: int, context: int) -> Optional[BtbHit]:
        """Find the entry for one specific branch address (exact offset)."""
        base = line_of(address, self.config.line_size)
        offset = address - base
        row = self.row_of(base)
        tag = self.tag_of(base, context)
        found = self._table.find(
            row, lambda entry: entry.tag == tag and entry.offset == offset
        )
        if found is None:
            return None
        way, entry = found
        self._table.touch(row, way)
        return BtbHit(row=row, way=way, entry=entry, line_base=base)

    # ------------------------------------------------------------------
    # Write port (second port: read-analyze-write install filtering)
    # ------------------------------------------------------------------

    def install(self, address: int, context: int, entry: BtbEntry) -> InstallResult:
        """Install *entry* for *address*, filtering duplicates.

        Models the z15 install path: "a read before write using the
        second search port ... only written into the BTB1 if the read
        shows that it does not already exist" (section III).
        """
        base = line_of(address, self.config.line_size)
        offset = address - base
        row = self.row_of(base)
        tag = self.tag_of(base, context)
        entry.tag = tag
        entry.offset = offset
        entry.line_base = base
        entry.context = context
        existing = self._table.find(
            row, lambda candidate: candidate.tag == tag and candidate.offset == offset
        )
        if existing is not None:
            self.duplicate_rejects += 1
            result = InstallResult(installed=False, duplicate=True, row=row)
            if self.on_install is not None:
                self.on_install(address=address, context=context, entry=entry,
                                result=result)
            return result
        way, victim = self._table.install(row, entry)
        self.installs += 1
        if victim is not None:
            self.evictions += 1
        result = InstallResult(
            installed=True, duplicate=False, row=row, way=way, victim=victim
        )
        if self.on_install is not None:
            self.on_install(address=address, context=context, entry=entry,
                            result=result)
        return result

    def remove(self, hit: BtbHit) -> bool:
        """Remove a (bad) entry; True when it was still present."""
        current = self._table.read(hit.row, hit.way)
        if current is not hit.entry:
            return False
        self._table.invalidate(hit.row, hit.way)
        self.removals += 1
        if self.on_remove is not None:
            self.on_remove(row=hit.row, way=hit.way, entry=hit.entry)
        return True

    # ------------------------------------------------------------------
    # Periodic-refresh support
    # ------------------------------------------------------------------

    def entry_at(self, row: int, way: int) -> Optional[BtbEntry]:
        """Direct read of one slot (update-time entry relocation)."""
        return self._table.read(row, way)

    def victim_preview(self, row: int) -> Optional[BtbEntry]:
        """The entry next in line for eviction in *row*, if the row is full.

        The periodic refresh analyses a no-hit search's row and writes its
        LRU entry back to the BTB2 (section III).  A row with an empty way
        has no eviction pressure, so returns None.
        """
        way = self._table.victim_way(row)
        return self._table.read(row, way)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        return self._table.occupancy()

    @property
    def capacity(self) -> int:
        return self._table.capacity

    def component_counters(self) -> dict:
        """Native statistics, harvested by the telemetry layer."""
        return {
            "searches": self.searches,
            "hit_searches": self.hit_searches,
            "installs": self.installs,
            "duplicate_rejects": self.duplicate_rejects,
            "evictions": self.evictions,
            "removals": self.removals,
            "occupancy": self.occupancy,
            "capacity": self.capacity,
        }

    def entries(self):
        """Iterate ``(row, way, entry)`` over all valid entries."""
        return iter(self._table)

    def clear(self) -> None:
        self._table.clear()

    # ------------------------------------------------------------------
    # Fault-injection & audit hooks (repro.resilience)
    # ------------------------------------------------------------------

    def invalidate_entry(self, row: int, way: int) -> None:
        """Drop one slot — the invalidate-on-parity-error recovery action."""
        self._table.invalidate(row, way)

    def corrupt(self, rng) -> Optional[Corruption]:
        """Flip bits in one live entry, keeping it legal-but-wrong.

        Every mutation stays inside the ranges :meth:`audit` checks
        (offsets halfword-aligned and in-line, BHT 0..3, tags within the
        fold mask), so injected faults degrade prediction quality without
        ever faking a modelling bug.
        """
        victims = [(row, way, entry) for row, way, entry in self._table]
        if not victims:
            return None
        row, way, entry = rng.choice(victims)
        field = rng.choice(("target", "bht", "offset", "tag", "flag"))
        bits = 1
        if field == "bht":
            old = entry.bht.value
            entry.bht.value = old ^ rng.randint(1, 3)
            bits = flipped_bits(old, entry.bht.value)
        elif field == "offset":
            flipped = entry.offset ^ (1 << rng.randint(1, self._line_shift - 1))
            if self._offset_collides(row, entry, flipped):
                field = "target"
                entry.target ^= 1 << rng.randint(1, 24)
            else:
                entry.offset = flipped
        elif field == "tag":
            flipped = entry.tag ^ (1 << rng.randint(0, self._tag_bits - 1))
            if self._tag_collides(row, entry, flipped):
                field = "target"
                entry.target ^= 1 << rng.randint(1, 24)
            else:
                entry.tag = flipped
        elif field == "flag":
            name = rng.choice(("bidirectional", "multi_target", "crs_blacklisted"))
            setattr(entry, name, not getattr(entry, name))
            field = name
        else:
            entry.target ^= 1 << rng.randint(1, 24)

        def _invalidate(table=self._table, row=row, way=way, entry=entry):
            if table.read(row, way) is entry:
                table.invalidate(row, way)

        return Corruption(
            component="btb1",
            location=f"row={row},way={way}",
            field=field,
            bits_flipped=bits,
            invalidate=_invalidate,
        )

    def _offset_collides(self, row: int, entry: BtbEntry, offset: int) -> bool:
        """Would (entry.tag, offset) duplicate another entry in *row*?"""
        return any(
            other is not entry
            and other.tag == entry.tag and other.offset == offset
            for other in self._table.row_ref(row)
            if other is not None
        )

    def _tag_collides(self, row: int, entry: BtbEntry, tag: int) -> bool:
        """Would (tag, entry.offset) duplicate another entry in *row*?"""
        return any(
            other is not entry
            and other.tag == tag and other.offset == entry.offset
            for other in self._table.row_ref(row)
            if other is not None
        )

    def audit(self) -> List[str]:
        """Structural-invariant check; returns violation strings (none
        when the array is healthy)."""
        violations: List[str] = []
        if not 0 <= self.occupancy <= self.capacity:
            violations.append(
                f"btb1 occupancy {self.occupancy} outside [0, {self.capacity}]"
            )
        line_size = self.config.line_size
        seen_rows: dict = {}
        for row, way, entry in self._table:
            where = f"btb1[row={row},way={way}]"
            if entry.offset % 2 != 0 or not 0 <= entry.offset < line_size:
                violations.append(
                    f"{where} offset {entry.offset} not an even in-line offset"
                )
            if not 0 <= entry.bht.value <= 3:
                violations.append(f"{where} bht value {entry.bht.value} outside 0..3")
            if not 0 <= entry.tag <= self._tag_fold_mask:
                violations.append(f"{where} tag {entry.tag} wider than the fold mask")
            key = (entry.tag, entry.offset)
            seen = seen_rows.setdefault(row, set())
            if key in seen:
                violations.append(
                    f"{where} duplicates (tag={entry.tag}, offset={entry.offset})"
                )
            seen.add(key)
        return violations
