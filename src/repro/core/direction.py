"""Direction-provider selection — the paper's figure 8.

For a BTB1 hit the chain is: entries marked unconditional are taken;
bidirectional branches consult the perceptron (if useful), then the
speculative PHT overlay, then the main TAGE PHT tables (weak filtering
applied), and finally the BHT (with its own speculative overlay).  The
selected provider *and* the alternate — what would have been selected
without the provider — are recorded, because completion-time usefulness
updates compare the two (section V).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.slots import add_slots
from repro.core.btb1 import BtbHit
from repro.core.cpred import (
    POWER_PERCEPTRON,
    POWER_PHT,
    ColumnPredictor,
    CpredLookup,
)
from repro.core.gpv import GlobalPathVector
from repro.core.perceptron import Perceptron, PerceptronLookup
from repro.core.providers import DirectionProvider
from repro.core.spec import SpeculativeOverlay, sbht_key, spht_key
from repro.core.tage import LONG, TageLookupSnapshot, TagePht


@add_slots
@dataclass
class DirectionDecision:
    """The selected direction plus everything the GPQ must remember."""

    taken: bool
    provider: DirectionProvider
    alternate_taken: Optional[bool]
    alternate_provider: Optional[DirectionProvider]
    bht_taken: bool
    tage_snapshot: Optional[TageLookupSnapshot]
    perceptron_lookup: Optional[PerceptronLookup]
    pht_powered: bool = True
    perceptron_powered: bool = True


class DirectionLogic:
    """Composes the BHT, TAGE PHT, perceptron and speculative overlays."""

    def __init__(
        self,
        tage: TagePht,
        perceptron: Perceptron,
        sbht: SpeculativeOverlay,
        spht: SpeculativeOverlay,
        cpred: ColumnPredictor,
    ):
        self.tage = tage
        self.perceptron = perceptron
        self.sbht = sbht
        self.spht = spht
        self.cpred = cpred

    def decide(
        self,
        hit: BtbHit,
        gpv: GlobalPathVector,
        sequence: int,
        cpred_lookup: CpredLookup,
    ) -> DirectionDecision:
        """Run figure 8 for one BTB1 hit."""
        entry = hit.entry
        if entry.is_unconditional:
            return DirectionDecision(
                taken=True,
                provider=DirectionProvider.UNCONDITIONAL,
                alternate_taken=None,
                alternate_provider=None,
                bht_taken=True,
                tage_snapshot=None,
                perceptron_lookup=None,
            )

        # Figure 8 considers the candidates in a fixed priority order and
        # only ever consumes the first two (provider + alternate), so the
        # chain below fills two slots directly instead of building a
        # candidate list.  Every lookup still runs under the original
        # conditions — the probes have observable side effects (counters,
        # replacement state) that must stay identical.
        provider: Optional[DirectionProvider] = None
        taken = False
        alternate_provider: Optional[DirectionProvider] = None
        alternate_taken: Optional[bool] = None
        tage_snapshot: Optional[TageLookupSnapshot] = None
        perceptron_lookup: Optional[PerceptronLookup] = None
        pht_powered = True
        perceptron_powered = True

        if entry.may_use_direction_aux:
            cpred = self.cpred
            perceptron_powered = cpred.allows_power(
                cpred_lookup, POWER_PERCEPTRON
            )
            pht_powered = cpred.allows_power(cpred_lookup, POWER_PHT)

            if perceptron_powered:
                perceptron_lookup = self.perceptron.lookup(hit.address, gpv)
                if perceptron_lookup.hit and perceptron_lookup.useful:
                    provider = DirectionProvider.PERCEPTRON
                    taken = perceptron_lookup.taken
            else:
                cpred.note_power_gate_miss()

            if pht_powered:
                tage_lookup = self.tage.lookup(hit.address, gpv)
                tage_snapshot = TageLookupSnapshot.from_lookup(tage_lookup)
                # SPHT overlay first (probing long then short until one
                # table hit yields an override), then the main-table
                # provider, then the TAGE-internal alternate (long's alt
                # is short).
                spht = self.spht
                for pht_hit in (tage_lookup.long_hit, tage_lookup.short_hit):
                    if pht_hit is None:
                        continue
                    override = spht.lookup(
                        spht_key(pht_hit.table, pht_hit.row, pht_hit.tag)
                    )
                    if override is not None:
                        if provider is None:
                            provider = DirectionProvider.SPHT
                            taken = override
                        elif alternate_provider is None:
                            alternate_provider = DirectionProvider.SPHT
                            alternate_taken = override
                        break
                tage_provider = tage_lookup.provider
                if tage_provider is not None:
                    provider_id = (
                        DirectionProvider.PHT_LONG
                        if tage_provider == LONG
                        else DirectionProvider.PHT_SHORT
                    )
                    if provider is None:
                        provider = provider_id
                        taken = tage_lookup.provider_taken
                    elif alternate_provider is None:
                        alternate_provider = provider_id
                        alternate_taken = tage_lookup.provider_taken
                    if tage_provider == LONG and tage_lookup.short_hit is not None:
                        if alternate_provider is None:
                            alternate_provider = DirectionProvider.PHT_SHORT
                            alternate_taken = tage_lookup.short_hit.taken
            else:
                cpred.note_power_gate_miss()

        # BHT leg, with its speculative overlay.
        bht_taken = entry.bht.taken
        sbht_override = self.sbht.lookup(
            sbht_key(hit.row, hit.way, entry.tag, entry.offset)
        )
        if sbht_override is not None:
            if provider is None:
                provider = DirectionProvider.SBHT
                taken = sbht_override
            elif alternate_provider is None:
                alternate_provider = DirectionProvider.SBHT
                alternate_taken = sbht_override
        if provider is None:
            provider = DirectionProvider.BHT
            taken = bht_taken
        elif alternate_provider is None:
            alternate_provider = DirectionProvider.BHT
            alternate_taken = bht_taken

        # "Upon a weak prediction, a new entry is written into the SBHT
        # or SPHT" — assume it correct and strengthen speculatively.
        self._install_weak_overlays(
            hit, provider, taken, tage_snapshot, sequence
        )

        return DirectionDecision(
            taken=taken,
            provider=provider,
            alternate_taken=alternate_taken,
            alternate_provider=alternate_provider,
            bht_taken=bht_taken,
            tage_snapshot=tage_snapshot,
            perceptron_lookup=perceptron_lookup,
            pht_powered=pht_powered,
            perceptron_powered=perceptron_powered,
        )

    def _install_weak_overlays(
        self,
        hit: BtbHit,
        provider: DirectionProvider,
        taken: bool,
        tage_snapshot: Optional[TageLookupSnapshot],
        sequence: int,
    ) -> None:
        entry = hit.entry
        if provider is DirectionProvider.BHT and entry.bht.weak:
            self.sbht.install(
                sbht_key(hit.row, hit.way, entry.tag, entry.offset),
                taken,
                sequence,
            )
        if (
            provider in (DirectionProvider.PHT_SHORT, DirectionProvider.PHT_LONG)
            and tage_snapshot is not None
            and tage_snapshot.provider_weak
            and tage_snapshot.provider is not None
        ):
            self.spht.install(
                spht_key(
                    tage_snapshot.provider,
                    tage_snapshot.provider_row,
                    tage_snapshot.provider_tag,
                ),
                taken,
                sequence,
            )
