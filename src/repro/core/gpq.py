"""The global prediction queue (GPQ).

"Branch prediction information is also queued within the IFB in the
global prediction queue (GPQ) to be used upon completion for performing
updates" (section IV).  The GPQ holds each prediction's full state —
including the *alternate* prediction and the GPV snapshot — across the
"large gap in time between when branches are predicted and when they are
updated", and drives every non-speculative update when the branch
completes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional

from repro.common.slots import add_slots
from repro.core.cpred import CpredLookup
from repro.core.crs import CrsPrediction
from repro.core.ctb import CtbLookup
from repro.core.perceptron import PerceptronLookup
from repro.core.providers import DirectionProvider, TargetProvider
from repro.core.tage import TageLookupSnapshot
from repro.isa.instructions import BranchKind


@add_slots
@dataclass
class PredictionRecord:
    """Everything the update pipeline needs about one predicted branch."""

    sequence: int
    address: int
    context: int
    thread: int
    kind: BranchKind
    length: int
    #: True when the BTB1 provided the prediction ("dynamically
    #: predicted"); False for surprise branches.
    dynamic: bool
    predicted_taken: bool
    predicted_target: Optional[int]
    direction_provider: DirectionProvider
    target_provider: TargetProvider
    #: The direction the alternate provider would have chosen (section V).
    alternate_taken: Optional[bool] = None
    alternate_provider: Optional[DirectionProvider] = None
    #: GPV value captured *before* this branch updated it.
    gpv_snapshot: int = 0
    # --- provider-specific prediction-time snapshots -------------------
    btb_row: int = 0
    btb_way: int = 0
    btb_tag: int = 0
    btb_offset: int = 0
    bidirectional_at_prediction: bool = False
    multi_target_at_prediction: bool = False
    marked_return_at_prediction: bool = False
    blacklisted_at_prediction: bool = False
    tage: Optional[TageLookupSnapshot] = None
    perceptron: Optional[PerceptronLookup] = None
    ctb: Optional[CtbLookup] = None
    crs: Optional[CrsPrediction] = None
    cpred: Optional[CpredLookup] = None
    #: CRS speculative-stack checkpoint taken after this branch's
    #: prediction-side processing (restored on a flush at this branch).
    crs_stack_snapshot: tuple = (False, 0)
    #: Power gating applied to this branch's aux lookups.
    pht_powered: bool = True
    perceptron_powered: bool = True
    ctb_powered: bool = True
    # --- resolution (filled by the engine before completion) -----------
    actual_taken: Optional[bool] = None
    actual_target: Optional[int] = None

    @property
    def resolved(self) -> bool:
        return self.actual_taken is not None

    @property
    def direction_wrong(self) -> bool:
        if not self.resolved:
            return False
        return self.predicted_taken != self.actual_taken

    @property
    def target_wrong(self) -> bool:
        """Wrong target on an agreed-taken branch."""
        if not self.resolved or not self.actual_taken or not self.predicted_taken:
            return False
        return self.predicted_target != self.actual_target

    @property
    def mispredicted(self) -> bool:
        return self.direction_wrong or self.target_wrong

    @property
    def next_sequential(self) -> int:
        return self.address + self.length

    def resolve(self, actual_taken: bool, actual_target: Optional[int]) -> None:
        self.actual_taken = actual_taken
        self.actual_target = actual_target


class GlobalPredictionQueue:
    """Bounded in-order queue of in-flight prediction records.

    The functional engine uses it to delay non-speculative updates by the
    configured completion latency — the property that makes the SBHT/SPHT
    overlays observable.  Implemented directly over a deque (push and
    completion-popping run once per predicted branch).
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"gpq capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._items: "deque[PredictionRecord]" = deque()
        self.forced_completions = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def push(self, record: PredictionRecord) -> Optional[PredictionRecord]:
        """Enqueue a new prediction.  When the queue is full the oldest
        record is force-completed first (modelling the stall that would
        otherwise throttle the search pipeline); it is returned so the
        caller can run its update immediately."""
        items = self._items
        forced = None
        if len(items) >= self.capacity:
            forced = items.popleft()
            self.forced_completions += 1
        items.append(record)
        return forced

    def completions_due(self, completed_sequence: int) -> List[PredictionRecord]:
        """Pop every record whose branch has completed (sequence <=
        *completed_sequence*), oldest first."""
        items = self._items
        if not items or items[0].sequence > completed_sequence:
            return []
        due: List[PredictionRecord] = []
        popleft = items.popleft
        while items and items[0].sequence <= completed_sequence:
            due.append(popleft())
        return due

    def drain(self) -> List[PredictionRecord]:
        """Complete everything (end of run)."""
        due = list(self._items)
        self._items.clear()
        return due

    def flush(self) -> None:
        """Pipeline flush: discard in-flight records without updates."""
        self._items.clear()

    def component_counters(self) -> dict:
        """Native statistics, harvested by the telemetry layer."""
        return {
            "forced_completions": self.forced_completions,
            "occupancy": len(self._items),
            "capacity": self.capacity,
        }

    def audit(self) -> List[str]:
        """Structural-invariant check (repro.resilience): occupancy
        bounded by capacity, records in sequence order."""
        violations: List[str] = []
        if len(self._items) > self.capacity:
            violations.append(
                f"gpq occupancy {len(self._items)} over capacity {self.capacity}"
            )
        last: Optional[int] = None
        for record in self._items:
            if last is not None and record.sequence < last:
                violations.append(
                    f"gpq sequence order violated at {record.sequence} "
                    f"(after {last})"
                )
                break
            last = record.sequence
        return violations
