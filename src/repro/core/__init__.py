"""The paper's primary contribution: the z15 lookahead branch predictor.

The composed predictor lives in :class:`LookaheadBranchPredictor`; every
structure it assembles (BTB1/BTB2, TAGE PHT, perceptron, CTB, CRS,
CPRED, GPV, GPQ, speculative overlays) is individually importable and
individually tested.
"""

from repro.core.btb1 import Btb1, BtbHit, InstallResult
from repro.core.btb2 import Btb2System, StagedTransfer
from repro.core.cpred import ColumnPredictor, CpredLookup
from repro.core.crs import CallReturnStack, CrsPrediction
from repro.core.ctb import ChangingTargetBuffer, CtbLookup
from repro.core.direction import DirectionDecision, DirectionLogic
from repro.core.entries import Btb2Entry, BtbEntry
from repro.core.gpq import GlobalPredictionQueue, PredictionRecord
from repro.core.gpv import GlobalPathVector
from repro.core.perceptron import Perceptron, PerceptronLookup
from repro.core.predictor import (
    LookaheadBranchPredictor,
    PredictionOutcome,
    SearchTrace,
)
from repro.core.providers import DirectionProvider, TargetProvider
from repro.core.spec import SpeculativeOverlay
from repro.core.state_io import load_state, save_state
from repro.core.tage import TageLookup, TageLookupSnapshot, TagePht
from repro.core.target import TargetDecision, TargetLogic

__all__ = [
    "Btb1",
    "BtbHit",
    "InstallResult",
    "Btb2System",
    "StagedTransfer",
    "ColumnPredictor",
    "CpredLookup",
    "CallReturnStack",
    "CrsPrediction",
    "ChangingTargetBuffer",
    "CtbLookup",
    "DirectionDecision",
    "DirectionLogic",
    "BtbEntry",
    "Btb2Entry",
    "GlobalPredictionQueue",
    "PredictionRecord",
    "GlobalPathVector",
    "Perceptron",
    "PerceptronLookup",
    "LookaheadBranchPredictor",
    "PredictionOutcome",
    "SearchTrace",
    "DirectionProvider",
    "TargetProvider",
    "SpeculativeOverlay",
    "load_state",
    "save_state",
    "TageLookup",
    "TageLookupSnapshot",
    "TagePht",
    "TargetDecision",
    "TargetLogic",
]
