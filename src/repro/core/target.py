"""Target-provider selection — the paper's figure 9.

The BTB1 always has a target.  Only once a branch has resolved with a
wrong target does its BTB1 entry get marked multi-target, opening the
auxiliary providers: the call/return stack (for marked, non-blacklisted
returns while the prediction stack is valid) ahead of the CTB (on a
path-history tag hit), falling back to the BTB1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.btb1 import BtbHit
from repro.core.cpred import POWER_CTB, ColumnPredictor, CpredLookup
from repro.core.crs import CallReturnStack, CrsPrediction
from repro.core.ctb import ChangingTargetBuffer, CtbLookup
from repro.core.providers import TargetProvider


@dataclass
class TargetDecision:
    """The selected target plus the GPQ snapshots."""

    target: int
    provider: TargetProvider
    ctb_lookup: Optional[CtbLookup]
    crs_prediction: Optional[CrsPrediction]
    ctb_powered: bool = True


class TargetLogic:
    """Composes the BTB1 target, CTB and CRS."""

    def __init__(
        self,
        ctb: ChangingTargetBuffer,
        crs: CallReturnStack,
        cpred: ColumnPredictor,
    ):
        self.ctb = ctb
        self.crs = crs
        self.cpred = cpred

    def decide(
        self,
        hit: BtbHit,
        context: int,
        gpv_snapshot: int,
        cpred_lookup: CpredLookup,
        thread: int = 0,
    ) -> TargetDecision:
        """Run figure 9 for one predicted-taken BTB1 hit."""
        entry = hit.entry
        ctb_lookup: Optional[CtbLookup] = None
        crs_prediction: Optional[CrsPrediction] = None
        ctb_powered = True

        if entry.may_use_target_aux:
            crs_prediction = self.crs.predict_target(
                is_marked_return=entry.return_offset is not None,
                return_offset=entry.return_offset,
                blacklisted=entry.crs_blacklisted,
                thread=thread,
            )
            if crs_prediction.used:
                assert crs_prediction.target is not None
                return TargetDecision(
                    target=crs_prediction.target,
                    provider=TargetProvider.CRS,
                    ctb_lookup=None,
                    crs_prediction=crs_prediction,
                )
            ctb_powered = self.cpred.allows_power(cpred_lookup, POWER_CTB)
            if ctb_powered:
                ctb_lookup = self.ctb.lookup(hit.address, context, gpv_snapshot)
                if ctb_lookup.hit:
                    assert ctb_lookup.target is not None
                    return TargetDecision(
                        target=ctb_lookup.target,
                        provider=TargetProvider.CTB,
                        ctb_lookup=ctb_lookup,
                        crs_prediction=crs_prediction,
                        ctb_powered=ctb_powered,
                    )
            else:
                self.cpred.note_power_gate_miss()

        return TargetDecision(
            target=entry.target,
            provider=TargetProvider.BTB1,
            ctb_lookup=ctb_lookup,
            crs_prediction=crs_prediction,
            ctb_powered=ctb_powered,
        )
