"""The TAGE-style pattern history tables (section V).

z15 employs two tagged PHT tables — *short* indexed with the most recent
9 GPV branches and *long* with all 17 — "a variation of the TAGE
algorithm" (Seznec's L-TAGE, the paper's [8]).  Earlier generations
(z196..z14) used a single tagged PHT; that is modelled by constructing
:class:`TagePht` with ``config.tage=False``.

Key behaviours reproduced:

* entries carry a direction counter and a usefulness count; an entry can
  only be displaced when its usefulness is 0;
* new installs happen when a predicted branch resolves with a wrong
  direction; the table whose victim has usefulness 0 is chosen, a 2:1
  preference for the short table breaking ties; a short-table
  misprediction attempts a long-table install;
* usefulness moves up when the TAGE prediction beat the alternate
  predictor and down when it lost to it;
* *weak filtering*: a weak TAGE hit only provides the prediction while a
  global weak-prediction counter sits above a threshold, and a weak long
  hit defers to a strong short hit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.bits import bit_folder, mask
from repro.common.corruption import Corruption, flipped_bits
from repro.common.slots import add_slots
from repro.configs.predictor import PhtConfig
from repro.core.gpv import GlobalPathVector
from repro.structures.assoc import SetAssociativeTable
from repro.structures.saturating import SaturatingCounter

SHORT = "short"
LONG = "long"


@add_slots
@dataclass
class TageEntry:
    """One tagged-PHT entry."""

    tag: int
    counter: SaturatingCounter
    usefulness: SaturatingCounter

    @property
    def taken(self) -> bool:
        return self.counter.value >= (self.counter.maximum + 1) // 2

    @property
    def weak(self) -> bool:
        """True in the two central counter states."""
        midpoint = (self.counter.maximum + 1) // 2
        return self.counter.value in (midpoint - 1, midpoint)

    def update_direction(self, taken: bool) -> None:
        if taken:
            self.counter.increment()
        else:
            self.counter.decrement()


@add_slots
@dataclass
class TableLookup:
    """Result of probing one table for one branch."""

    table: str
    row: int
    way: int
    tag: int
    entry: TageEntry
    #: Direction/strength captured at probe time.  Plain fields, not
    #: entry properties: the selection chain re-reads them several
    #: times per branch, and nothing trains the entry between the probe
    #: and selection (updates happen at completion time).
    taken: bool = False
    weak: bool = False


@add_slots
@dataclass
class TageLookup:
    """Combined two-table lookup plus provider selection outcome."""

    short_hit: Optional[TableLookup] = None
    long_hit: Optional[TableLookup] = None
    #: Which table provides the direction (SHORT/LONG), or None when the
    #: prediction falls through to the BHT.
    provider: Optional[str] = None
    provider_taken: Optional[bool] = None
    provider_weak: bool = False
    #: True when a weak hit existed but filtering suppressed it.
    weak_filtered: bool = False

    def hit_for(self, table: str) -> Optional[TableLookup]:
        return self.short_hit if table == SHORT else self.long_hit

    @property
    def provider_hit(self) -> Optional[TableLookup]:
        if self.provider is None:
            return None
        return self.hit_for(self.provider)


class _TageTable:
    """One physical tagged table (rows x ways)."""

    def __init__(self, name: str, config: PhtConfig, history: int, gpv_bits: int):
        self.name = name
        self.config = config
        self.history = history
        self._gpv_bits_per_branch = gpv_bits
        self._row_bits = config.rows.bit_length() - 1
        # Index/tag constants, bound once per table.
        self._history_mask = mask(history * gpv_bits)
        self._index_fold = (
            bit_folder(self._row_bits) if self._row_bits > 0 else None
        )
        self._tag_fold = bit_folder(config.tag_bits)
        # Fold constants for the fully-inlined lookup() XOR loops.
        self._row_fold_mask = mask(self._row_bits)
        self._tag_bits = config.tag_bits
        self._tag_fold_mask = mask(config.tag_bits)
        self._table: SetAssociativeTable[TageEntry] = SetAssociativeTable(
            rows=config.rows, ways=config.ways, policy="lru"
        )
        self.hits = 0
        self.installs = 0
        self.install_failures = 0

    def _history_value(self, gpv_snapshot: int) -> int:
        return gpv_snapshot & self._history_mask

    def index_of(self, address: int, gpv_snapshot: int) -> int:
        if self._index_fold is None:
            return 0
        history = gpv_snapshot & self._history_mask
        mixed = (address >> 1) ^ (history * 0x5BD1) ^ (history >> self._row_bits)
        return self._index_fold(mixed)

    def tag_of(self, address: int, gpv_snapshot: int) -> int:
        history = gpv_snapshot & self._history_mask
        mixed = (address >> 3) ^ (history * 0xC2B2) ^ (address << 2)
        return self._tag_fold(mixed)

    def lookup(self, address: int, gpv_snapshot: int) -> Optional[TableLookup]:
        # Hot path: index_of/tag_of inlined down to the XOR-fold loops
        # (shared history extraction, no wrapper or fold-closure calls),
        # and the live row scanned directly instead of building a
        # per-call match closure for find().
        history = gpv_snapshot & self._history_mask
        row_bits = self._row_bits
        row = 0
        if row_bits:
            value = (address >> 1) ^ (history * 0x5BD1) ^ (history >> row_bits)
            fold_mask = self._row_fold_mask
            while value:
                row ^= value & fold_mask
                value >>= row_bits
        value = (address >> 3) ^ (history * 0xC2B2) ^ (address << 2)
        tag = 0
        tag_bits = self._tag_bits
        fold_mask = self._tag_fold_mask
        while value:
            tag ^= value & fold_mask
            value >>= tag_bits
        for way, entry in enumerate(self._table.row_ref(row)):
            if entry is not None and entry.tag == tag:
                self.hits += 1
                self._table.policy(row).touch(way)
                counter = entry.counter
                midpoint = (counter.maximum + 1) // 2
                value = counter.value
                return TableLookup(
                    table=self.name, row=row, way=way, tag=tag, entry=entry,
                    taken=value >= midpoint,
                    weak=value in (midpoint - 1, midpoint),
                )
        return None

    def can_install(self, address: int, gpv_snapshot: int) -> bool:
        """True when the indexed row holds an empty or usefulness-0 way."""
        row = self.index_of(address, gpv_snapshot)
        for entry in self._table.row_entries(row):
            if entry is None or entry.usefulness.value == 0:
                return True
        return False

    def install(self, address: int, gpv_snapshot: int, taken: bool) -> bool:
        """Attempt an install; only usefulness-0 victims may be displaced.

        On failure every usefulness count in the row is decremented
        (L-TAGE-style aging; assumption, prevents permanent lockout).
        """
        row = self.index_of(address, gpv_snapshot)
        tag = self.tag_of(address, gpv_snapshot)
        midpoint = (1 << self.config.counter_bits) // 2
        new_entry = TageEntry(
            tag=tag,
            counter=SaturatingCounter(
                self.config.counter_bits,
                value=midpoint if taken else midpoint - 1,
            ),
            usefulness=SaturatingCounter(self.config.usefulness_bits, value=0),
        )
        entries = self._table.row_entries(row)
        victim_way: Optional[int] = None
        for way, entry in enumerate(entries):
            if entry is None:
                victim_way = way
                break
            if entry.usefulness.value == 0 and victim_way is None:
                victim_way = way
        if victim_way is None:
            for entry in entries:
                assert entry is not None
                entry.usefulness.decrement()
            self.install_failures += 1
            return False
        self._table.write(row, victim_way, new_entry)
        self.installs += 1
        return True

    def entry_at(self, row: int, way: int, tag: int) -> Optional[TageEntry]:
        """Re-find an entry at update time; None if it was displaced."""
        entry = self._table.read(row, way)
        if entry is None or entry.tag != tag:
            return None
        return entry

    @property
    def occupancy(self) -> int:
        return self._table.occupancy()

    # -- fault-injection & audit hooks (repro.resilience) --------------

    def corrupt(self, rng) -> Optional[Corruption]:
        """Flip bits in one live entry, keeping every field in range."""
        victims = [(row, way, entry) for row, way, entry in self._table]
        if not victims:
            return None
        row, way, entry = rng.choice(victims)
        field = rng.choice(("counter", "usefulness", "tag"))
        if field == "counter":
            old = entry.counter.value
            entry.counter.value = old ^ rng.randint(1, entry.counter.maximum)
            bits = flipped_bits(old, entry.counter.value)
        elif field == "usefulness":
            old = entry.usefulness.value
            entry.usefulness.value = old ^ rng.randint(1, entry.usefulness.maximum)
            bits = flipped_bits(old, entry.usefulness.value)
        else:
            entry.tag ^= 1 << rng.randint(0, self._tag_bits - 1)
            bits = 1

        def _invalidate(table=self._table, row=row, way=way, entry=entry):
            if table.read(row, way) is entry:
                table.invalidate(row, way)

        return Corruption(
            component=f"tage-{self.name}",
            location=f"row={row},way={way}",
            field=field,
            bits_flipped=bits,
            invalidate=_invalidate,
        )

    def audit(self) -> list:
        """Structural-invariant check; returns violation strings."""
        violations = []
        if not 0 <= self.occupancy <= self._table.capacity:
            violations.append(
                f"tage-{self.name} occupancy {self.occupancy} outside "
                f"[0, {self._table.capacity}]"
            )
        for row, way, entry in self._table:
            where = f"tage-{self.name}[row={row},way={way}]"
            if not 0 <= entry.counter.value <= entry.counter.maximum:
                violations.append(
                    f"{where} counter {entry.counter.value} outside "
                    f"[0, {entry.counter.maximum}]"
                )
            if not 0 <= entry.usefulness.value <= entry.usefulness.maximum:
                violations.append(
                    f"{where} usefulness {entry.usefulness.value} outside "
                    f"[0, {entry.usefulness.maximum}]"
                )
            if not 0 <= entry.tag <= self._tag_fold_mask:
                violations.append(f"{where} tag {entry.tag} wider than the fold mask")
        return violations


class TagePht:
    """The complete PHT subsystem: one or two tagged tables."""

    #: Physical-table implementation; the array backend substitutes its
    #: mirror-accelerated twin (:class:`repro.structures.arrays.
    #: _ArrayTageTable`) through this seam.
    table_class = _TageTable

    def __init__(self, config: PhtConfig, gpv_bits_per_branch: int = 2):
        config.validate()
        self.config = config
        table_class = self.table_class
        self.short_table = table_class(
            SHORT, config, config.short_history, gpv_bits_per_branch
        )
        self.long_table: Optional[_TageTable] = (
            table_class(LONG, config, config.long_history, gpv_bits_per_branch)
            if config.tage
            else None
        )
        # Global weak-prediction confidence counters, one per table.
        weak_max = (1 << config.weak_counter_bits) - 1
        initial = min(config.weak_threshold + 1, weak_max)
        self._weak_confidence = {
            SHORT: SaturatingCounter(config.weak_counter_bits, value=initial),
            LONG: SaturatingCounter(config.weak_counter_bits, value=initial),
        }
        # 2:1 short-over-long install preference rotation (paper).
        self._install_rotation = 0
        self.lookups = 0
        self.provider_selections = 0
        self.weak_filter_suppressions = 0

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def weak_allowed(self, table: str) -> bool:
        return self._weak_confidence[table].value > self.config.weak_threshold

    def lookup(self, address: int, gpv: GlobalPathVector) -> TageLookup:
        """Probe the tables and run provider selection (figure 8's PHT leg)."""
        self.lookups += 1
        snapshot = gpv.snapshot()
        result = TageLookup()
        result.short_hit = self.short_table.lookup(address, snapshot)
        if self.long_table is not None:
            result.long_hit = self.long_table.lookup(address, snapshot)
        self._select_provider(result)
        if result.provider is not None:
            self.provider_selections += 1
        return result

    def _select_provider(self, result: TageLookup) -> None:
        """Longest-history-first with weak filtering (section V)."""
        long_hit = result.long_hit
        short_hit = result.short_hit
        if long_hit is not None:
            if not long_hit.weak:
                self._use(result, long_hit)
                return
            # Long is weak: a strong short hit is preferred outright.
            if short_hit is not None and not short_hit.weak:
                self._use(result, short_hit)
                return
            if self.weak_allowed(LONG):
                self._use(result, long_hit)
                return
            result.weak_filtered = True
            self.weak_filter_suppressions += 1
            if short_hit is not None and self.weak_allowed(SHORT):
                self._use(result, short_hit)
                return
            return
        if short_hit is not None:
            if not short_hit.weak:
                self._use(result, short_hit)
                return
            if self.config.tage and not self.weak_allowed(SHORT):
                result.weak_filtered = True
                self.weak_filter_suppressions += 1
                return
            self._use(result, short_hit)

    @staticmethod
    def _use(result: TageLookup, hit: TableLookup) -> None:
        result.provider = hit.table
        result.provider_taken = hit.taken
        result.provider_weak = hit.weak

    # ------------------------------------------------------------------
    # Update (completion time)
    # ------------------------------------------------------------------

    def update(
        self,
        lookup: "TageLookupSnapshot",
        actual_taken: bool,
        alternate_taken: Optional[bool],
    ) -> None:
        """Apply the completion-time update for a TAGE-provided prediction.

        *lookup* is the prediction-time snapshot (table/row/way/tag plus
        recorded directions); *alternate_taken* is what the alternate
        provider would have predicted (stored in the GPQ, section V).
        """
        provider_entry = None
        if lookup.provider is not None:
            table = self._table_by_name(lookup.provider)
            provider_entry = table.entry_at(
                lookup.provider_row, lookup.provider_way, lookup.provider_tag
            )
        if provider_entry is not None:
            provider_correct = provider_entry.taken == actual_taken
            provider_entry.update_direction(actual_taken)
            if alternate_taken is not None:
                alternate_correct = alternate_taken == actual_taken
                if provider_correct and not alternate_correct:
                    provider_entry.usefulness.increment()
                elif not provider_correct and alternate_correct:
                    provider_entry.usefulness.decrement()
        # Weak-confidence bookkeeping for any weak hit seen at prediction.
        for table_name, taken, weak in lookup.weak_observations:
            if weak:
                if taken == actual_taken:
                    self._weak_confidence[table_name].increment()
                else:
                    self._weak_confidence[table_name].decrement()

    def install_on_mispredict(
        self,
        address: int,
        gpv_snapshot: int,
        actual_taken: bool,
        mispredicting_provider: Optional[str],
    ) -> Optional[str]:
        """Allocate after a wrong-direction resolution (section V).

        Returns the table installed into, or None.  A short-table
        misprediction escalates to the long table; other mispredictions
        pick the usefulness-0 table, favouring short 2:1 on ties.
        """
        if self.long_table is None:
            installed = self.short_table.install(address, gpv_snapshot, actual_taken)
            return SHORT if installed else None
        if mispredicting_provider == SHORT:
            installed = self.long_table.install(address, gpv_snapshot, actual_taken)
            return LONG if installed else None
        if mispredicting_provider == LONG:
            # The longest history already failed; refresh its direction
            # via update() — no new allocation target exists.
            return None
        short_ok = self.short_table.can_install(address, gpv_snapshot)
        long_ok = self.long_table.can_install(address, gpv_snapshot)
        if short_ok and long_ok:
            # 2:1 rotation favouring the short table.
            self._install_rotation = (self._install_rotation + 1) % 3
            choice = LONG if self._install_rotation == 0 else SHORT
        elif short_ok:
            choice = SHORT
        elif long_ok:
            choice = LONG
        else:
            # Neither has a usefulness-0 victim: age both rows.
            self.short_table.install(address, gpv_snapshot, actual_taken)
            self.long_table.install(address, gpv_snapshot, actual_taken)
            return None
        table = self._table_by_name(choice)
        installed = table.install(address, gpv_snapshot, actual_taken)
        return choice if installed else None

    def _table_by_name(self, name: str) -> _TageTable:
        if name == SHORT:
            return self.short_table
        if name == LONG and self.long_table is not None:
            return self.long_table
        raise ValueError(f"unknown TAGE table {name!r}")

    # ------------------------------------------------------------------
    # Fault-injection & audit hooks (repro.resilience)
    # ------------------------------------------------------------------

    def corrupt(self, rng) -> Optional[Corruption]:
        """Corrupt one entry in one of the tagged tables."""
        tables = [self.short_table]
        if self.long_table is not None:
            tables.append(self.long_table)
        first = rng.choice(tables)
        corruption = first.corrupt(rng)
        if corruption is not None:
            return corruption
        for table in tables:
            if table is not first:
                corruption = table.corrupt(rng)
                if corruption is not None:
                    return corruption
        return None

    def audit(self) -> list:
        """Structural-invariant check across both tables."""
        violations = list(self.short_table.audit())
        if self.long_table is not None:
            violations.extend(self.long_table.audit())
        for name, counter in self._weak_confidence.items():
            if not 0 <= counter.value <= counter.maximum:
                violations.append(
                    f"tage weak-confidence[{name}] {counter.value} outside "
                    f"[0, {counter.maximum}]"
                )
        return violations

    def component_counters(self) -> dict:
        """Native statistics, harvested by the telemetry layer."""
        counters = {
            "lookups": self.lookups,
            "provider_selections": self.provider_selections,
            "weak_filter_suppressions": self.weak_filter_suppressions,
            "short_hits": self.short_table.hits,
            "short_installs": self.short_table.installs,
            "short_install_failures": self.short_table.install_failures,
        }
        if self.long_table is not None:
            counters["long_hits"] = self.long_table.hits
            counters["long_installs"] = self.long_table.installs
            counters["long_install_failures"] = self.long_table.install_failures
        return counters


@add_slots
@dataclass
class TageLookupSnapshot:
    """What the GPQ stores about a TAGE lookup for completion-time update."""

    provider: Optional[str] = None
    provider_row: int = 0
    provider_way: int = 0
    provider_tag: int = 0
    provider_taken: Optional[bool] = None
    provider_weak: bool = False
    #: (table_name, predicted_taken, was_weak) per table that hit.
    weak_observations: tuple = field(default_factory=tuple)

    @classmethod
    def from_lookup(cls, lookup: TageLookup) -> "TageLookupSnapshot":
        observations = []
        for hit in (lookup.short_hit, lookup.long_hit):
            if hit is not None:
                observations.append((hit.table, hit.taken, hit.weak))
        snapshot = cls(weak_observations=tuple(observations))
        provider_hit = lookup.provider_hit
        if provider_hit is not None:
            snapshot.provider = provider_hit.table
            snapshot.provider_row = provider_hit.row
            snapshot.provider_way = provider_hit.way
            snapshot.provider_tag = provider_hit.tag
            snapshot.provider_taken = provider_hit.taken
            snapshot.provider_weak = provider_hit.weak
        return snapshot
