"""The changing target buffer (CTB, section VI).

The CTB predicts targets of multi-target branches — the quintessential
example being a shared function returning to one of several callers.  It
"is indexed solely as a function of the prior code path history as
represented in the GPV" (17 taken branches on z15, 9 before), and each
entry carries virtual-address tag bits so it can only be used "if there
is a tag match for the current address space undergoing search".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.bits import fold_xor, mask
from repro.common.corruption import Corruption
from repro.configs.predictor import CtbConfig
from repro.structures.assoc import SetAssociativeTable


@dataclass
class CtbEntry:
    """One changing-target entry."""

    tag: int
    target: int


@dataclass
class CtbLookup:
    """Prediction-time snapshot for the GPQ."""

    hit: bool
    row: int = 0
    way: int = 0
    tag: int = 0
    target: Optional[int] = None


class ChangingTargetBuffer:
    """2K-entry (512 x 4 on z15) GPV-indexed target predictor."""

    def __init__(self, config: CtbConfig, gpv_bits_per_branch: int = 2):
        config.validate()
        self.config = config
        self._gpv_bits_per_branch = gpv_bits_per_branch
        self._row_bits = config.rows.bit_length() - 1
        self._table: SetAssociativeTable[CtbEntry] = SetAssociativeTable(
            rows=config.rows, ways=config.ways, policy="lru"
        )
        self.lookups = 0
        self.hits = 0
        self.installs = 0
        self.target_updates = 0

    def _history(self, gpv_snapshot: int) -> int:
        return gpv_snapshot & mask(self.config.history * self._gpv_bits_per_branch)

    def row_of(self, gpv_snapshot: int) -> int:
        """Index purely from path history (section VI)."""
        if self._row_bits == 0:
            return 0
        history = self._history(gpv_snapshot)
        return fold_xor(history ^ (history >> self._row_bits) * 0x85EB, self._row_bits)

    def tag_of(self, address: int, context: int) -> int:
        """Virtual-address tag: branch address folded with the context."""
        return fold_xor((address >> 1) ^ (context * 0x27D4), self.config.tag_bits)

    def lookup(self, address: int, context: int, gpv_snapshot: int) -> CtbLookup:
        """Probe for a target under the current path history."""
        self.lookups += 1
        row = self.row_of(gpv_snapshot)
        tag = self.tag_of(address, context)
        found = self._table.find(row, lambda entry: entry.tag == tag)
        if found is None:
            return CtbLookup(hit=False, row=row, tag=tag)
        way, entry = found
        self._table.touch(row, way)
        self.hits += 1
        return CtbLookup(hit=True, row=row, way=way, tag=tag, target=entry.target)

    def install(
        self, address: int, context: int, gpv_snapshot: int, target: int
    ) -> None:
        """Install a target for (branch, path) — on a BTB1 wrong-target
        resolution (section VI)."""
        row = self.row_of(gpv_snapshot)
        tag = self.tag_of(address, context)
        self._table.install(
            row,
            CtbEntry(tag=tag, target=target),
            match=lambda entry: entry.tag == tag,
        )
        self.installs += 1

    def correct_target(self, lookup: CtbLookup, target: int) -> bool:
        """A CTB-provided target went wrong: "the CTB alone is updated
        with the correct target address" (section VI).  Returns True if
        the entry was still present."""
        entry = self._table.read(lookup.row, lookup.way)
        if entry is None or entry.tag != lookup.tag:
            return False
        entry.target = target
        self.target_updates += 1
        return True

    @property
    def occupancy(self) -> int:
        return self._table.occupancy()

    def component_counters(self) -> dict:
        """Native statistics, harvested by the telemetry layer."""
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "installs": self.installs,
            "target_updates": self.target_updates,
            "occupancy": self.occupancy,
        }

    # ------------------------------------------------------------------
    # Fault-injection & audit hooks (repro.resilience)
    # ------------------------------------------------------------------

    def corrupt(self, rng) -> Optional[Corruption]:
        """Flip one bit in a live entry's tag or target."""
        victims = [(row, way, entry) for row, way, entry in self._table]
        if not victims:
            return None
        row, way, entry = rng.choice(victims)
        field = rng.choice(("target", "tag"))
        if field == "target":
            entry.target ^= 1 << rng.randint(1, 24)
        else:
            entry.tag ^= 1 << rng.randint(0, self.config.tag_bits - 1)

        def _invalidate(table=self._table, row=row, way=way, entry=entry):
            if table.read(row, way) is entry:
                table.invalidate(row, way)

        return Corruption(
            component="ctb",
            location=f"row={row},way={way}",
            field=field,
            bits_flipped=1,
            invalidate=_invalidate,
        )

    def audit(self) -> list:
        """Structural-invariant check; returns violation strings."""
        violations = []
        if not 0 <= self.occupancy <= self._table.capacity:
            violations.append(
                f"ctb occupancy {self.occupancy} outside "
                f"[0, {self._table.capacity}]"
            )
        tag_mask = mask(self.config.tag_bits)
        for row, way, entry in self._table:
            where = f"ctb[row={row},way={way}]"
            if not 0 <= entry.tag <= tag_mask:
                violations.append(f"{where} tag {entry.tag} wider than the fold mask")
            if entry.target < 0:
                violations.append(f"{where} target {entry.target} negative")
        return violations
