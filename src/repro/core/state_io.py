"""Predictor-state persistence.

The paper's verification flow preloads "the branch predictor arrays like
BTB1 and BTB2 to initialize states into those arrays which would
otherwise be difficult to get to or would take a large number of
simulation cycles to reach" (§VII).  This module generalises that:
the learned contents of the BTB1, BTB2 and CTB can be saved to a JSON
file after a warmup run and restored into a fresh predictor, skipping
minutes of re-warming in sweep experiments.

Only the address-keyed tables are persisted; the path-history tables
(TAGE, perceptron) are deliberately excluded — their entries are indexed
by GPV values that a fresh run will not reproduce exactly, so restoring
them would create phantom contexts.  They re-warm quickly from the
restored BTB state.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.common.atomic import atomic_write_text
from repro.common.errors import StateFormatError
from repro.core.entries import BtbEntry
from repro.core.predictor import LookaheadBranchPredictor
from repro.isa.instructions import BranchKind
from repro.structures.saturating import TwoBitDirectionCounter

#: Format marker.
STATE_FORMAT = "repro-predictor-state-v1"


def _entry_to_dict(entry: BtbEntry) -> dict:
    return {
        "offset": entry.offset,
        "length": entry.length,
        "kind": entry.kind.value,
        "target": entry.target,
        "bht": entry.bht.value,
        "bidirectional": entry.bidirectional,
        "multi_target": entry.multi_target,
        "return_offset": entry.return_offset,
        "skoot": entry.skoot,
        "line_base": entry.line_base,
        "context": entry.context,
    }


def _entry_from_dict(data: dict) -> BtbEntry:
    return BtbEntry(
        tag=0,  # recomputed at install time
        offset=data["offset"],
        length=data["length"],
        kind=BranchKind(data["kind"]),
        target=data["target"],
        bht=TwoBitDirectionCounter(data["bht"]),
        bidirectional=data["bidirectional"],
        multi_target=data["multi_target"],
        return_offset=data["return_offset"],
        skoot=data["skoot"],
        line_base=data["line_base"],
        context=data["context"],
    )


def save_state(
    predictor: LookaheadBranchPredictor, path: Union[str, Path]
) -> dict:
    """Write the predictor's learned BTB/CTB state to *path*.

    Returns the summary counts written.
    """
    btb1_entries = [
        _entry_to_dict(entry) for _row, _way, entry in predictor.btb1.entries()
    ]
    btb2_entries = []
    if predictor.btb2 is not None:
        for _row, _way, snapshot in predictor.btb2._table:
            btb2_entries.append(
                {
                    "offset": snapshot.offset,
                    "length": snapshot.length,
                    "kind": snapshot.kind.value,
                    "target": snapshot.target,
                    "bht": snapshot.bht_value,
                    "bidirectional": snapshot.bidirectional,
                    "multi_target": snapshot.multi_target,
                    "return_offset": snapshot.return_offset,
                    "skoot": snapshot.skoot,
                    "line_base": snapshot.line_base,
                    "context": snapshot.context,
                }
            )
    payload = {
        "format": STATE_FORMAT,
        "config_name": predictor.config.name,
        "btb1": btb1_entries,
        "btb2": btb2_entries,
    }
    # Canonical form (sorted keys, no whitespace): a save -> load -> save
    # round-trip of the same state is byte-identical, which the
    # differential harness relies on to detect lossy persistence.
    # Written atomically (temp sibling + fsync + rename): a process
    # killed mid-save leaves the previous checkpoint intact instead of
    # a torn file — the contract the serve layer's crash recovery and
    # the chaos harness lean on.
    atomic_write_text(path, json.dumps(payload, sort_keys=True,
                                       separators=(",", ":")))
    return {"btb1": len(btb1_entries), "btb2": len(btb2_entries)}


def load_state(
    predictor: LookaheadBranchPredictor, path: Union[str, Path]
) -> dict:
    """Restore saved state into *predictor* (installed through the
    normal dedup write port, so geometry differences are tolerated).

    Returns the counts actually installed.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise StateFormatError(f"{path}: not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise StateFormatError(
            f"{path}: expected a JSON object, got {type(payload).__name__}"
        )
    found = payload.get("format")
    if found != STATE_FORMAT:
        raise StateFormatError(
            f"{path}: unknown state format {found!r} "
            f"(expected {STATE_FORMAT!r})"
        )
    try:
        installed_btb1 = 0
        for data in payload["btb1"]:
            entry = _entry_from_dict(data)
            address = data["line_base"] + data["offset"]
            result = predictor.btb1.install(address, data["context"], entry)
            if result.installed:
                installed_btb1 += 1
        installed_btb2 = 0
        if predictor.btb2 is not None:
            for data in payload["btb2"]:
                entry = _entry_from_dict(data)
                address = data["line_base"] + data["offset"]
                predictor.btb2.install_snapshot(address, data["context"], entry)
                installed_btb2 += 1
    except (KeyError, TypeError, ValueError) as error:
        # Truncated or field-corrupted entries: KeyError for a missing
        # field, ValueError for an unknown BranchKind / out-of-range
        # counter, TypeError for wrongly-typed fields.
        raise StateFormatError(
            f"{path}: malformed state entry: "
            f"{type(error).__name__}: {error}"
        ) from error
    return {"btb1": installed_btb1, "btb2": installed_btb2}
