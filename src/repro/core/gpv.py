"""The Global Path Vector (section V).

The GPV represents the executed path as the last N *taken* branches:
each taken branch contributes a 2-bit hash of its instruction address,
shifted into the vector (oldest bits fall out).  Not-taken predictions do
not participate, because the search pipeline only re-indexes on taken
branches.

z13 and earlier tracked 9 taken branches (18 bits); z14/z15 track 17
(34 bits).
"""

from __future__ import annotations

from repro.common.bits import fold_xor, mask


class GlobalPathVector:
    """A shift register of per-taken-branch address hashes."""

    def __init__(self, depth: int = 17, bits_per_branch: int = 2):
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if bits_per_branch < 1:
            raise ValueError(f"bits_per_branch must be >= 1, got {bits_per_branch}")
        self.depth = depth
        self.bits_per_branch = bits_per_branch
        self.width = depth * bits_per_branch
        self._value = 0

    def branch_hash(self, address: int) -> int:
        """Hash a taken branch's instruction address down to the per-branch
        contribution ("select bits of the branch's instruction address are
        hashed down to a smaller 2-bit vector", section V).

        Instruction addresses are halfword aligned, so bit 0 carries no
        information; the hash folds the address above it.
        """
        return fold_xor(address >> 1, self.bits_per_branch)

    def record_taken(self, address: int) -> None:
        """Shift the hash of a newly taken branch into the vector."""
        self._value = (
            (self._value << self.bits_per_branch) | self.branch_hash(address)
        ) & mask(self.width)

    def value(self, depth: int | None = None) -> int:
        """The packed history.

        With *depth* the most recent that many branches are returned —
        this is how the short TAGE table sees only the youngest 9 of the
        17 tracked branches while the long table sees all 17.
        """
        if depth is None:
            return self._value
        if not 1 <= depth <= self.depth:
            raise ValueError(
                f"depth must be in [1, {self.depth}], got {depth}"
            )
        return self._value & mask(depth * self.bits_per_branch)

    def bits(self) -> tuple:
        """The vector as a tuple of 0/1 ints, LSB (youngest) first.

        The perceptron weights each consume one GPV bit (section V).
        """
        return tuple((self._value >> i) & 1 for i in range(self.width))

    def snapshot(self) -> int:
        """The raw value, for storing in a prediction record."""
        return self._value

    def restore(self, snapshot: int) -> None:
        """Reset the vector to a previously captured snapshot."""
        self._value = snapshot & mask(self.width)

    def clear(self) -> None:
        self._value = 0

    def __repr__(self) -> str:
        return (
            f"GlobalPathVector(depth={self.depth}, "
            f"value={self._value:#0{self.width // 4 + 2}x})"
        )
