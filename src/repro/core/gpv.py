"""The Global Path Vector (section V).

The GPV represents the executed path as the last N *taken* branches:
each taken branch contributes a 2-bit hash of its instruction address,
shifted into the vector (oldest bits fall out).  Not-taken predictions do
not participate, because the search pipeline only re-indexes on taken
branches.

z13 and earlier tracked 9 taken branches (18 bits); z14/z15 track 17
(34 bits).
"""

from __future__ import annotations

from repro.common.bits import bit_folder, mask

#: Entries kept in the per-instance branch-hash memo before it is reset
#: (the hash is a pure function of the address, so resetting only costs
#: recomputation, never correctness).
_HASH_CACHE_LIMIT = 1 << 16


class GlobalPathVector:
    """A shift register of per-taken-branch address hashes."""

    __slots__ = (
        "depth",
        "bits_per_branch",
        "width",
        "_value",
        "_width_mask",
        "_hash_fold",
        "_hash_cache",
        "_bits_value",
        "_bits_tuple",
    )

    def __init__(self, depth: int = 17, bits_per_branch: int = 2):
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if bits_per_branch < 1:
            raise ValueError(f"bits_per_branch must be >= 1, got {bits_per_branch}")
        self.depth = depth
        self.bits_per_branch = bits_per_branch
        self.width = depth * bits_per_branch
        self._value = 0
        # Hot-path constants and memos, bound once per instance.
        self._width_mask = mask(self.width)
        self._hash_fold = bit_folder(bits_per_branch)
        self._hash_cache: dict = {}
        self._bits_value = -1
        self._bits_tuple: tuple = ()

    def branch_hash(self, address: int) -> int:
        """Hash a taken branch's instruction address down to the per-branch
        contribution ("select bits of the branch's instruction address are
        hashed down to a smaller 2-bit vector", section V).

        Instruction addresses are halfword aligned, so bit 0 carries no
        information; the hash folds the address above it.  The hash is a
        pure function of the address, so it is memoized per address.
        """
        cache = self._hash_cache
        cached = cache.get(address)
        if cached is None:
            if len(cache) >= _HASH_CACHE_LIMIT:
                cache.clear()
            cached = cache[address] = self._hash_fold(address >> 1)
        return cached

    def record_taken(self, address: int) -> None:
        """Shift the hash of a newly taken branch into the vector."""
        self._value = (
            (self._value << self.bits_per_branch) | self.branch_hash(address)
        ) & self._width_mask

    def value(self, depth: int | None = None) -> int:
        """The packed history.

        With *depth* the most recent that many branches are returned —
        this is how the short TAGE table sees only the youngest 9 of the
        17 tracked branches while the long table sees all 17.
        """
        if depth is None:
            return self._value
        if not 1 <= depth <= self.depth:
            raise ValueError(
                f"depth must be in [1, {self.depth}], got {depth}"
            )
        return self._value & mask(depth * self.bits_per_branch)

    def bits(self) -> tuple:
        """The vector as a tuple of 0/1 ints, LSB (youngest) first.

        The perceptron weights each consume one GPV bit (section V).
        The expansion goes through ``bin()`` (one C-level pass instead
        of a per-bit shift loop) and the result is memoized against the
        current packed value.
        """
        value = self._value
        if value != self._bits_value:
            # ``value | (1 << width)`` plants a sentinel bit above the
            # vector so bin() always yields exactly ``width`` digits
            # after the '0b' prefix; reversing the slice makes it
            # LSB-first.
            self._bits_tuple = tuple(
                map(int, bin(value | (1 << self.width))[:2:-1])
            )
            self._bits_value = value
        return self._bits_tuple

    def snapshot(self) -> int:
        """The raw value, for storing in a prediction record."""
        return self._value

    def restore(self, snapshot: int) -> None:
        """Reset the vector to a previously captured snapshot."""
        self._value = snapshot & self._width_mask

    def clear(self) -> None:
        self._value = 0

    def __repr__(self) -> str:
        return (
            f"GlobalPathVector(depth={self.depth}, "
            f"value={self._value:#0{self.width // 4 + 2}x})"
        )
