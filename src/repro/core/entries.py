"""Entry records stored in the BTB arrays.

BTB1 entries carry the branch's partial tag, its position within the
64-byte line, the embedded BHT direction counter and the auxiliary-
predictor escalation flags (bidirectional, multi-target), the CRS return
marking/blacklist, and the SKOOT field (section IV-VI of the paper).

A note on ``line_base``: real entries cannot reconstruct their full
instruction address from the partial tag — which is exactly why bad
branch predictions on non-branch addresses happen.  The model keeps the
true installing line address in ``line_base`` as ground-truth
bookkeeping (used for BTB2 write-backs and for the IDU's bad-prediction
detection); *matching* never uses it, only the partial ``tag``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.slots import add_slots
from repro.isa.instructions import BranchKind, UNCONDITIONAL_KINDS
from repro.structures.saturating import TwoBitDirectionCounter


@add_slots
@dataclass
class BtbEntry:
    """One BTB1 entry: a branch the predictor has learned about."""

    #: Partial tag derived from the line address and context.
    tag: int
    #: Byte offset of the branch within its 64-byte line (even).
    offset: int
    #: Instruction length (2/4/6); lets consumers compute the NSIA.
    length: int
    #: Branch kind bits as decode reported them at install time.
    kind: BranchKind
    #: Predicted target address (always present; the BTB1 "always has a
    #: target address", section VI).
    target: int
    #: Embedded 2-bit BHT direction/strength counter.
    bht: TwoBitDirectionCounter = field(
        default_factory=lambda: TwoBitDirectionCounter(
            TwoBitDirectionCounter.WEAK_TAKEN
        )
    )
    #: Set once the branch has exhibited both directions; gates the
    #: TAGE PHT and perceptron (figure 8).
    bidirectional: bool = False
    #: Set once the branch has resolved with a wrong target; gates the
    #: CTB and CRS (figure 9).
    multi_target: bool = False
    #: When not None the branch is marked a possible return landing at
    #: NSIA + return_offset of the paired call (section VI).
    return_offset: Optional[int] = None
    #: True when a CRS-provided target went wrong; cleared by amnesty.
    crs_blacklisted: bool = False
    #: SKOOT skip amount in 64-byte lines along the target stream;
    #: None is the "unknown" initial state (section IV).
    skoot: Optional[int] = None
    #: Ground-truth line address this entry was installed from (model
    #: bookkeeping only; see module docstring).
    line_base: int = 0
    #: Address-space identifier at install time (model bookkeeping).
    context: int = 0
    #: Cached ``kind in UNCONDITIONAL_KINDS`` (figure 8: unconditional
    #: entries always predict taken).  ``kind`` is fixed at install
    #: time, and this is read several times per predicted branch, so a
    #: plain slot beats re-hashing the enum per access.
    is_unconditional: bool = field(init=False)

    def __post_init__(self) -> None:
        self.is_unconditional = self.kind in UNCONDITIONAL_KINDS

    @property
    def may_use_direction_aux(self) -> bool:
        """Whether the PHT/perceptron may override the BHT."""
        return self.bidirectional and not self.is_unconditional

    @property
    def may_use_target_aux(self) -> bool:
        """Whether the CTB/CRS may override the BTB1 target."""
        return self.multi_target

    def address_in(self, line_base: int) -> int:
        """The branch address this entry implies for a search of *line_base*."""
        return line_base + self.offset

    def train_skoot(self, observed_skip: int, maximum: int) -> None:
        """Move the SKOOT field toward *observed_skip*.

        The field starts unknown and afterwards only decreases
        ("only decreasing except when being updated from the unknown
        state", section IV).
        """
        clamped = max(0, min(observed_skip, maximum))
        if self.skoot is None:
            self.skoot = clamped
        else:
            self.skoot = min(self.skoot, clamped)


@add_slots
@dataclass
class Btb2Entry:
    """One BTB2 entry: a reduced snapshot sufficient to re-prime the BTB1.

    The BTB2 "acts like a level 2 cache for the BTB1" (section II.D); a
    transfer restores the branch without relearning its metadata.
    """

    tag: int
    offset: int
    length: int
    kind: BranchKind
    target: int
    #: Snapshot of the BHT state at write-back time.
    bht_value: int = TwoBitDirectionCounter.WEAK_TAKEN
    bidirectional: bool = False
    multi_target: bool = False
    return_offset: Optional[int] = None
    skoot: Optional[int] = None
    line_base: int = 0
    context: int = 0

    def to_btb1_entry(self, btb1_tag: int) -> BtbEntry:
        """Materialise a BTB1 entry from this snapshot."""
        return BtbEntry(
            tag=btb1_tag,
            offset=self.offset,
            length=self.length,
            kind=self.kind,
            target=self.target,
            bht=TwoBitDirectionCounter(self.bht_value),
            bidirectional=self.bidirectional,
            multi_target=self.multi_target,
            return_offset=self.return_offset,
            skoot=self.skoot,
            line_base=self.line_base,
            context=self.context,
        )

    @classmethod
    def from_btb1_entry(cls, entry: BtbEntry, btb2_tag: int) -> "Btb2Entry":
        """Snapshot a BTB1 entry for write-back (periodic refresh)."""
        return cls(
            tag=btb2_tag,
            offset=entry.offset,
            length=entry.length,
            kind=entry.kind,
            target=entry.target,
            bht_value=entry.bht.value,
            bidirectional=entry.bidirectional,
            multi_target=entry.multi_target,
            return_offset=entry.return_offset,
            skoot=entry.skoot,
            line_base=entry.line_base,
            context=entry.context,
        )
