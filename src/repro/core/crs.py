"""The call/return stack heuristic (CRS, section VI).

z/Architecture has no architected call/return instructions, so the
predictor *infers* call/return pairs from branch distance: a completed
taken branch whose |target - address| exceeds a threshold behaves like a
call, and its NSIA goes onto a one-entry stack; a later taken branch
landing at NSIA + {0,2,4,6,8} behaves like the matching return and gets
its BTB1 metadata marked.  The same machinery runs twice:

* the *detection* side at completion marks possible returns;
* the *prediction* side maintains its own one-entry stack and supplies
  ``stack.NSIA + return_offset`` as the target of marked returns.

CRS wrong targets blacklist the branch; every Nth completing
wrong-target blacklisted branch that still pair-matches receives
amnesty.

Stacks are per SMT thread (call/return pairing is a per-thread control
flow property); the blacklist/amnesty bookkeeping and statistics are
shared, matching the shared BTB1 metadata they protect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.corruption import Corruption
from repro.configs.predictor import CrsConfig


@dataclass
class _Stack:
    """A one-entry NSIA stack."""

    nsia: int = 0
    valid: bool = False

    def push(self, nsia: int) -> None:
        self.nsia = nsia
        self.valid = True

    def invalidate(self) -> None:
        self.valid = False


@dataclass
class CrsPrediction:
    """Prediction-side outcome for one branch, stored in the GPQ."""

    used: bool
    target: Optional[int] = None


class CallReturnStack:
    """Both sides of the one-entry call/return stack heuristic."""

    def __init__(self, config: CrsConfig):
        config.validate()
        self.config = config
        self._predict_stacks: Dict[int, _Stack] = {}
        self._detect_stacks: Dict[int, _Stack] = {}
        self._amnesty_counter = 0
        self.predictions_used = 0
        self.detections = 0
        self.blacklists = 0
        self.amnesties = 0

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    def _predict_stack(self, thread: int) -> _Stack:
        return self._predict_stacks.setdefault(thread, _Stack())

    def _detect_stack(self, thread: int) -> _Stack:
        return self._detect_stacks.setdefault(thread, _Stack())

    # ------------------------------------------------------------------
    # Shared heuristic
    # ------------------------------------------------------------------

    def _is_call_like(self, branch_address: int, target: int) -> bool:
        """Distance heuristic: far-away taken targets look like calls."""
        return abs(target - branch_address) >= self.config.distance_threshold

    def _matching_offset(self, stack: _Stack, target: int) -> Optional[int]:
        """The return offset if *target* lands at NSIA + offset."""
        if not stack.valid:
            return None
        delta = target - stack.nsia
        if delta in self.config.return_offsets:
            return delta
        return None

    # ------------------------------------------------------------------
    # Prediction side
    # ------------------------------------------------------------------

    def predict_target(
        self,
        is_marked_return: bool,
        return_offset: Optional[int],
        blacklisted: bool,
        thread: int = 0,
    ) -> CrsPrediction:
        """Figure 9's CRS leg: a marked, non-blacklisted return with a
        valid prediction stack takes NSIA + offset; the stack is then
        invalidated."""
        stack = self._predict_stack(thread)
        if (
            not self.enabled
            or not is_marked_return
            or blacklisted
            or return_offset is None
            or not stack.valid
        ):
            return CrsPrediction(used=False)
        target = stack.nsia + return_offset
        stack.invalidate()
        self.predictions_used += 1
        return CrsPrediction(used=True, target=target)

    def note_predicted_taken(
        self, branch_address: int, target: int, nsia: int, thread: int = 0
    ) -> None:
        """After a taken prediction: push the NSIA when the branch's
        predicted target clears the distance threshold."""
        if not self.enabled:
            return
        if self._is_call_like(branch_address, target):
            self._predict_stack(thread).push(nsia)

    def flush_prediction_stack(self, thread: int = 0) -> None:
        """Full restarts (run start, context switch) invalidate the
        speculative prediction stack."""
        self._predict_stack(thread).invalidate()

    def snapshot_prediction_stack(self, thread: int = 0) -> tuple:
        """Checkpoint the speculative stack (stored per prediction so a
        flush can restore the state as of the mispredicted branch)."""
        stack = self._predict_stack(thread)
        return (stack.valid, stack.nsia)

    def restore_prediction_stack(self, snapshot: tuple,
                                 thread: int = 0) -> None:
        """Restore a checkpoint taken at the restart point — the repair
        that keeps call/return pairing alive across mispredicted noise
        between a call and its return."""
        stack = self._predict_stack(thread)
        stack.valid, stack.nsia = snapshot

    # ------------------------------------------------------------------
    # Detection side (completion time)
    # ------------------------------------------------------------------

    def observe_completed_taken(
        self, branch_address: int, target: int, nsia: int, thread: int = 0
    ) -> Optional[int]:
        """Process one completed resolved-taken branch.

        Returns the matched return offset when this branch behaved like a
        return (the caller marks the BTB1 metadata), else None.  The
        call-like push happens regardless, with the paper's subtlety: the
        stack "can continually be updated even while valid ... as long as
        it doesn't otherwise match the NSIA plus offset already on the
        stack".
        """
        if not self.enabled:
            return None
        stack = self._detect_stack(thread)
        matched = self._matching_offset(stack, target)
        if matched is not None:
            self.detections += 1
            stack.invalidate()
            return matched
        if self._is_call_like(branch_address, target):
            stack.push(nsia)
        return None

    # ------------------------------------------------------------------
    # Blacklist / amnesty
    # ------------------------------------------------------------------

    def should_blacklist(self) -> bool:
        """A CRS-provided target resolved wrong: always blacklist."""
        self.blacklists += 1
        return True

    def consider_amnesty(self, still_pair_matches: bool) -> bool:
        """Called for every completing wrong-target branch that is
        blacklisted; every Nth such branch that still produced a
        successful call/return pair match is un-blacklisted."""
        if not self.enabled:
            return False
        self._amnesty_counter += 1
        if self._amnesty_counter >= self.config.amnesty_period:
            self._amnesty_counter = 0
            if still_pair_matches:
                self.amnesties += 1
                return True
        return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def prediction_stack_valid(self) -> bool:
        """Thread 0's prediction stack state (single-thread tests)."""
        return self._predict_stack(0).valid

    @property
    def detection_stack_valid(self) -> bool:
        """Thread 0's detection stack state (single-thread tests)."""
        return self._detect_stack(0).valid

    def prediction_stack_valid_for(self, thread: int) -> bool:
        return self._predict_stack(thread).valid

    def component_counters(self) -> dict:
        """Native statistics, harvested by the telemetry layer."""
        return {
            "predictions_used": self.predictions_used,
            "detections": self.detections,
            "blacklists": self.blacklists,
            "amnesties": self.amnesties,
        }

    # ------------------------------------------------------------------
    # Fault-injection & audit hooks (repro.resilience)
    # ------------------------------------------------------------------

    def corrupt(self, rng) -> Optional[Corruption]:
        """Corrupt one live stack: flip an NSIA bit or the valid bit.

        Only instantiated stacks (threads that have run) are candidates;
        recovery invalidates the stack, which merely costs the next
        return prediction.
        """
        candidates = [
            (side, thread, stack)
            for side, stacks in (
                ("predict", self._predict_stacks),
                ("detect", self._detect_stacks),
            )
            for thread, stack in sorted(stacks.items())
            if stack.valid
        ]
        if not candidates:
            return None
        side, thread, stack = rng.choice(candidates)
        field = rng.choice(("nsia", "valid"))
        if field == "nsia":
            stack.nsia ^= 1 << rng.randint(1, 24)
        else:
            stack.valid = False

        def _invalidate(stack=stack):
            stack.invalidate()

        return Corruption(
            component="crs",
            location=f"{side}-stack,thread={thread}",
            field=field,
            bits_flipped=1,
            invalidate=_invalidate,
        )

    def audit(self) -> list:
        """Structural-invariant check; returns violation strings."""
        violations = []
        if not 0 <= self._amnesty_counter < self.config.amnesty_period:
            violations.append(
                f"crs amnesty counter {self._amnesty_counter} outside "
                f"[0, {self.config.amnesty_period})"
            )
        for side, stacks in (
            ("predict", self._predict_stacks),
            ("detect", self._detect_stacks),
        ):
            for thread, stack in stacks.items():
                if stack.nsia < 0:
                    violations.append(
                        f"crs {side}-stack thread {thread} nsia "
                        f"{stack.nsia} negative"
                    )
        return violations
