"""The second-level BTB (BTB2), its staging queue and search triggers.

The BTB2 "acts like a level 2 cache for the BTB1" but, unlike a cache,
"must approximate when content is missing rather than looking for a
specific cache line" (section III).  The approximations, all modelled
here:

* three qualified successive BTB1 searches with no predictions trigger a
  search (``empty_search_threshold``);
* an unusual number of non-predicted disruptive branches in a time
  window proactively fires a search;
* context-changing events trigger proactive searches to prime the BTB1
  for the new context;
* found branches (up to 128 = 32 lines x 4 ways) flow through a staging
  queue and are installed into the BTB1 via read-before-write dedup;
* the z15 semi-inclusive policy relies on *periodic refresh*: every
  ``refresh_threshold`` no-hit searches, the searched row's next-victim
  entry is written back to the BTB2 under the covers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from repro.common.addresses import line_of
from repro.common.bits import bit_folder, mask
from repro.common.corruption import Corruption, flipped_bits
from repro.common.errors import ConfigError
from repro.common.slots import add_slots
from repro.configs.predictor import Btb2Config
from repro.core.btb1 import Btb1
from repro.core.entries import Btb2Entry, BtbEntry
from repro.structures.assoc import SetAssociativeTable
from repro.structures.queues import BoundedQueue


@add_slots
@dataclass
class StagedTransfer:
    """One BTB2 hit waiting in the staging queue for a BTB1 install."""

    address: int
    context: int
    entry: Btb2Entry


class Btb2System:
    """The BTB2 array plus the trigger/transfer/refresh machinery."""

    def __init__(self, config: Btb2Config, btb1: Btb1):
        config.validate()
        self.config = config
        self.btb1 = btb1
        self._row_bits = config.rows.bit_length() - 1
        # Index/tag constants, bound once (line_size and rows are
        # validated powers of two).
        self._line_shift = config.line_size.bit_length() - 1
        self._row_mask = mask(self._row_bits)
        self._tag_fold = bit_folder(config.tag_bits)
        self._table: SetAssociativeTable[Btb2Entry] = SetAssociativeTable(
            rows=config.rows, ways=config.ways, policy=config.policy
        )
        self.staging: BoundedQueue[StagedTransfer] = BoundedQueue(
            config.staging_capacity, name="btb2-staging"
        )
        # Trigger state
        self._consecutive_empty = 0
        self._no_hit_since_refresh = 0
        self._surprise_times: List[int] = []
        # Fault-injection state: pending refresh-writeback suppressions
        # (models losing the under-the-covers refresh write, the eDRAM
        # failure mode the periodic refresh exists to mask).
        self._refresh_suppress = 0
        self.refreshes_suppressed = 0
        # Statistics
        self.searches = 0
        self.searches_empty_trigger = 0
        self.searches_surprise_trigger = 0
        self.searches_context_trigger = 0
        self.transfers_found = 0
        self.transfers_staged = 0
        self.staging_overflows = 0
        self.writebacks = 0
        self.refresh_writebacks = 0
        self.installs = 0
        #: Staged transfers the BTB1's read-before-write filtering
        #: rejected as already present (the dedup that makes repeated
        #: transfers of hot lines cheap, section III).
        self.install_dedups = 0

    # ------------------------------------------------------------------
    # Index / tag math
    # ------------------------------------------------------------------

    def row_of(self, address: int) -> int:
        return (address >> self._line_shift) & self._row_mask

    def tag_of(self, address: int, context: int) -> int:
        high_bits = (address >> self._line_shift) >> self._row_bits
        return self._tag_fold(high_bits ^ (context * 0x9E37))

    # ------------------------------------------------------------------
    # Trigger bookkeeping (driven by the search pipeline)
    # ------------------------------------------------------------------

    def note_search_outcome(self, search_address: int, context: int, hit: bool) -> bool:
        """Record one BTB1 search result; fire a BTB2 search when the
        empty-search counter reaches its threshold.  Returns True when a
        BTB2 search fired."""
        if hit:
            self._consecutive_empty = 0
            return False
        self._consecutive_empty += 1
        self._no_hit_since_refresh += 1
        self._maybe_periodic_refresh(search_address, context)
        if self._consecutive_empty >= self.config.empty_search_threshold:
            self._consecutive_empty = 0
            self.searches_empty_trigger += 1
            self.search(search_address, context)
            return True
        return False

    def note_surprise_branch(self, now: int, address: int, context: int) -> bool:
        """Record a disruptive non-predicted branch; proactively fire a
        search when an unusual number occur within the window."""
        window = self.config.surprise_trigger_window
        self._surprise_times = [t for t in self._surprise_times if now - t < window]
        self._surprise_times.append(now)
        if len(self._surprise_times) >= self.config.surprise_trigger_count:
            self._surprise_times.clear()
            self.searches_surprise_trigger += 1
            self.search(address, context)
            return True
        return False

    def note_context_switch(self, address: int, context: int) -> None:
        """Context-changing events prefetch and prime the level-1
        predictor for the new context (section III)."""
        self.searches_context_trigger += 1
        self.search(address, context)

    def reset_empty_counter(self) -> None:
        """Restarts re-qualify the empty-search counting."""
        self._consecutive_empty = 0

    # ------------------------------------------------------------------
    # The search itself
    # ------------------------------------------------------------------

    def search(self, address: int, context: int) -> int:
        """Search ``transfer_lines`` consecutive lines starting at the
        line of *address*; stage every hit.  Returns branches staged."""
        self.searches += 1
        base = line_of(address, self.config.line_size)
        staged = 0
        for line_number in range(self.config.transfer_lines):
            line_base = base + line_number * self.config.line_size
            row = self.row_of(line_base)
            tag = self.tag_of(line_base, context)
            for way, entry in self._table.find_all(
                row, lambda candidate, t=tag: candidate.tag == t
            ):
                self.transfers_found += 1
                self._table.touch(row, way)
                transfer = StagedTransfer(
                    address=line_base + entry.offset, context=context, entry=entry
                )
                if self.staging.try_push(transfer):
                    staged += 1
                else:
                    self.staging_overflows += 1
        self.transfers_staged += staged
        return staged

    def drain_staging(self, limit: Optional[int] = None) -> int:
        """Install staged transfers into the BTB1 (read-before-write
        dedup happens inside :meth:`Btb1.install`).  Returns installs."""
        installed = 0
        remaining = limit if limit is not None else len(self.staging)
        while remaining > 0 and self.staging:
            transfer = self.staging.pop()
            remaining -= 1
            btb1_tag = self.btb1.tag_of(transfer.address, transfer.context)
            entry = transfer.entry.to_btb1_entry(btb1_tag)
            result = self.btb1.install(transfer.address, transfer.context, entry)
            if result.installed:
                installed += 1
                self.installs += 1
                if not self.config.inclusive and result.victim is not None:
                    # Semi-exclusive designs write the displaced victim
                    # back out (the pre-z15 BTBP victim-buffer role).
                    self.writeback_entry(result.victim)
            elif result.duplicate:
                self.install_dedups += 1
        return installed

    # ------------------------------------------------------------------
    # Write-backs
    # ------------------------------------------------------------------

    def writeback_entry(self, entry: BtbEntry) -> None:
        """Write a BTB1 entry's current state into the BTB2."""
        address = entry.line_base + entry.offset
        row = self.row_of(address)
        tag = self.tag_of(address, entry.context)
        snapshot = Btb2Entry.from_btb1_entry(entry, tag)
        self._table.install(
            row,
            snapshot,
            match=lambda candidate: candidate.tag == tag
            and candidate.offset == entry.offset,
        )
        self.writebacks += 1

    def _maybe_periodic_refresh(self, search_address: int, context: int) -> None:
        """The z15 periodic refresh: on every Nth no-hit search, write the
        searched row's next-victim entry back to the BTB2 (section III).

        Only the inclusive (z15) design uses this; semi-exclusive
        generations write victims back at eviction time instead.
        """
        if not self.config.inclusive:
            return
        if self._no_hit_since_refresh < self.config.refresh_threshold:
            return
        self._no_hit_since_refresh = 0
        if self._refresh_suppress > 0:
            # An injected fault eats this refresh write: the BTB1 victim
            # is not written back, so its learned state can be lost on
            # eviction (the inclusive design's assumption goes stale).
            self._refresh_suppress -= 1
            self.refreshes_suppressed += 1
            return
        row = self.btb1.row_of(search_address)
        victim = self.btb1.victim_preview(row)
        if victim is not None:
            self.writeback_entry(victim)
            self.refresh_writebacks += 1

    def handle_btb1_eviction(self, victim: BtbEntry) -> None:
        """Called when a BTB1 install displaces an entry.

        z15 assumes the victim "already exist[s] in the BTB2" (kept true
        by periodic refresh) and burns no power re-writing it; the
        semi-exclusive designs write it back now.
        """
        if not self.config.inclusive:
            self.writeback_entry(victim)

    # ------------------------------------------------------------------
    # Direct install (used at completion time for learned branches)
    # ------------------------------------------------------------------

    def install_snapshot(self, address: int, context: int, entry: BtbEntry) -> None:
        """Install/update the BTB2 copy of a branch (inclusive priming)."""
        row = self.row_of(address)
        tag = self.tag_of(address, context)
        offset = address % self.config.line_size
        snapshot = Btb2Entry.from_btb1_entry(entry, tag)
        snapshot.offset = offset
        snapshot.line_base = line_of(address, self.config.line_size)
        self._table.install(
            row,
            snapshot,
            match=lambda candidate: candidate.tag == tag
            and candidate.offset == offset,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        return self._table.occupancy()

    @property
    def capacity(self) -> int:
        return self._table.capacity

    def component_counters(self) -> dict:
        """Native statistics, harvested by the telemetry layer."""
        return {
            "searches": self.searches,
            "searches_empty_trigger": self.searches_empty_trigger,
            "searches_surprise_trigger": self.searches_surprise_trigger,
            "searches_context_trigger": self.searches_context_trigger,
            "transfers_found": self.transfers_found,
            "transfers_staged": self.transfers_staged,
            "staging_overflows": self.staging_overflows,
            "installs": self.installs,
            "install_dedups": self.install_dedups,
            "writebacks": self.writebacks,
            "refresh_writebacks": self.refresh_writebacks,
            "occupancy": self.occupancy,
            "capacity": self.capacity,
            "staging_occupancy": len(self.staging),
        }

    def contains(self, address: int, context: int) -> bool:
        """Ground-truth membership test (used by tests/verification)."""
        row = self.row_of(address)
        tag = self.tag_of(address, context)
        offset = address % self.config.line_size
        return (
            self._table.find(
                row,
                lambda candidate: candidate.tag == tag and candidate.offset == offset,
            )
            is not None
        )

    def clear(self) -> None:
        self._table.clear()
        self.staging.clear()
        self._consecutive_empty = 0

    # ------------------------------------------------------------------
    # Fault-injection & audit hooks (repro.resilience)
    # ------------------------------------------------------------------

    def invalidate_entry(self, row: int, way: int) -> None:
        """Drop one slot — the invalidate-on-parity-error recovery action."""
        self._table.invalidate(row, way)

    def suppress_refreshes(self, count: int = 1) -> None:
        """Arm the fault that swallows the next *count* periodic-refresh
        writebacks (an omission fault: no stored bits change)."""
        self._refresh_suppress += count

    def corrupt(self, rng) -> Optional[Corruption]:
        """Flip bits in one live BTB2 snapshot, keeping it legal-but-wrong."""
        victims = [(row, way, entry) for row, way, entry in self._table]
        if not victims:
            return None
        row, way, entry = rng.choice(victims)
        field = rng.choice(("target", "bht_value", "offset", "tag", "flag"))
        bits = 1
        if field == "bht_value":
            old = entry.bht_value
            entry.bht_value = old ^ rng.randint(1, 3)
            bits = flipped_bits(old, entry.bht_value)
        elif field == "offset":
            flipped = entry.offset ^ (1 << rng.randint(1, self._line_shift - 1))
            if self._snapshot_collides(row, entry, entry.tag, flipped):
                field = "target"
                entry.target ^= 1 << rng.randint(1, 24)
            else:
                entry.offset = flipped
        elif field == "tag":
            flipped = entry.tag ^ (1 << rng.randint(0, self.config.tag_bits - 1))
            if self._snapshot_collides(row, entry, flipped, entry.offset):
                field = "target"
                entry.target ^= 1 << rng.randint(1, 24)
            else:
                entry.tag = flipped
        elif field == "flag":
            name = rng.choice(("bidirectional", "multi_target"))
            setattr(entry, name, not getattr(entry, name))
            field = name
        else:
            entry.target ^= 1 << rng.randint(1, 24)

        def _invalidate(table=self._table, row=row, way=way, entry=entry):
            if table.read(row, way) is entry:
                table.invalidate(row, way)

        return Corruption(
            component="btb2",
            location=f"row={row},way={way}",
            field=field,
            bits_flipped=bits,
            invalidate=_invalidate,
        )

    def _snapshot_collides(self, row, entry, tag: int, offset: int) -> bool:
        """Would (tag, offset) duplicate another snapshot in *row*?"""
        return any(
            other is not entry and other.tag == tag and other.offset == offset
            for other in self._table.row_ref(row)
            if other is not None
        )

    def corrupt_staging(self, rng) -> Optional[Corruption]:
        """Fault one in-flight staged transfer: drop it entirely (an
        omission — 0 bits flipped, undetectable by parity) or stale-ify
        its payload (the staged copy goes bad; the array copy is left
        untouched, exactly like a transfer bus flip)."""
        if not self.staging:
            return None
        index = rng.randint(0, len(self.staging) - 1)
        transfer = self.staging.item_at(index)
        if rng.chance(0.5):
            self.staging.remove_at(index)
            return Corruption(
                component="btb2",
                location=f"staging[{index}]",
                field="dropped",
                bits_flipped=0,
                invalidate=lambda: None,
            )
        stale = replace(transfer.entry,
                        target=transfer.entry.target ^ (1 << rng.randint(1, 24)))
        transfer.entry = stale

        def _invalidate(staging=self.staging, transfer=transfer):
            for position, queued in enumerate(staging):
                if queued is transfer:
                    staging.remove_at(position)
                    return

        return Corruption(
            component="btb2",
            location=f"staging[{index}]",
            field="target",
            bits_flipped=1,
            invalidate=_invalidate,
        )

    def audit(self) -> List[str]:
        """Structural-invariant check; returns violation strings."""
        violations: List[str] = []
        if not 0 <= self.occupancy <= self.capacity:
            violations.append(
                f"btb2 occupancy {self.occupancy} outside [0, {self.capacity}]"
            )
        if len(self.staging) > self.staging.capacity:
            violations.append(
                f"btb2 staging occupancy {len(self.staging)} over capacity "
                f"{self.staging.capacity}"
            )
        if self._refresh_suppress < 0:
            violations.append(
                f"btb2 refresh-suppress counter negative: {self._refresh_suppress}"
            )
        line_size = self.config.line_size
        tag_mask = mask(self.config.tag_bits)
        seen_rows: dict = {}
        for row, way, entry in self._table:
            where = f"btb2[row={row},way={way}]"
            if entry.offset % 2 != 0 or not 0 <= entry.offset < line_size:
                violations.append(
                    f"{where} offset {entry.offset} not an even in-line offset"
                )
            if not 0 <= entry.bht_value <= 3:
                violations.append(
                    f"{where} bht value {entry.bht_value} outside 0..3"
                )
            if not 0 <= entry.tag <= tag_mask:
                violations.append(f"{where} tag {entry.tag} wider than the fold mask")
            key = (entry.tag, entry.offset)
            seen = seen_rows.setdefault(row, set())
            if key in seen:
                violations.append(
                    f"{where} duplicates (tag={entry.tag}, offset={entry.offset})"
                )
            seen.add(key)
        for index, transfer in enumerate(self.staging):
            staged = transfer.entry
            if staged.offset % 2 != 0 or not 0 <= staged.offset < line_size:
                violations.append(
                    f"btb2 staging[{index}] offset {staged.offset} "
                    f"not an even in-line offset"
                )
            if not 0 <= staged.bht_value <= 3:
                violations.append(
                    f"btb2 staging[{index}] bht value {staged.bht_value} outside 0..3"
                )
        return violations
