"""The instruction-cache hierarchy.

The z15 has a private L1 I-cache, a 4 MB private L2 I-cache at a minimum
of 8 cycles over the L1, and a shared L3 at ~45 cycles over an L1 hit
(sections I-II).  The model is a tag-only hierarchy — only hit/miss and
latency matter to the front end — with an explicit prefetch port so the
lookahead branch predictor can act as "an effective cache prefetcher"
(section IV).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.common.bits import mask
from repro.common.errors import ConfigError
from repro.structures.assoc import SetAssociativeTable


@dataclass
class CacheLevelConfig:
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    line_size: int = 128
    associativity: int = 8
    #: Total access latency in cycles when this level hits.
    latency: int = 4

    def validate(self) -> None:
        if self.size_bytes <= 0 or self.size_bytes % (
            self.line_size * self.associativity
        ):
            raise ConfigError(
                f"{self.name}: size {self.size_bytes} not divisible into "
                f"{self.associativity}-way sets of {self.line_size}B lines"
            )

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.line_size * self.associativity)


class CacheLevel:
    """One tag-only cache level."""

    def __init__(self, config: CacheLevelConfig):
        config.validate()
        self.config = config
        sets = config.sets
        if sets & (sets - 1):
            raise ConfigError(f"{config.name}: set count {sets} not a power of two")
        self._set_bits = sets.bit_length() - 1
        self._table: SetAssociativeTable[int] = SetAssociativeTable(
            rows=sets, ways=config.associativity, policy="lru"
        )
        self.accesses = 0
        self.hits = 0
        self.fills = 0

    def _set_of(self, address: int) -> int:
        return (address // self.config.line_size) & mask(self._set_bits)

    def _tag_of(self, address: int) -> int:
        return (address // self.config.line_size) >> self._set_bits

    def probe(self, address: int) -> bool:
        """Hit/miss without statistics (used by prefetch filtering)."""
        row = self._set_of(address)
        tag = self._tag_of(address)
        return self._table.find(row, lambda t: t == tag) is not None

    def access(self, address: int) -> bool:
        """Demand access: returns hit, touching LRU."""
        self.accesses += 1
        row = self._set_of(address)
        tag = self._tag_of(address)
        found = self._table.find(row, lambda t: t == tag)
        if found is not None:
            self.hits += 1
            self._table.touch(row, found[0])
            return True
        return False

    def fill(self, address: int) -> None:
        """Bring the line in (demand fill or prefetch)."""
        row = self._set_of(address)
        tag = self._tag_of(address)
        if self._table.find(row, lambda t: t == tag) is not None:
            return
        self._table.install(row, tag)
        self.fills += 1

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return 1.0 - self.hits / self.accesses


def z15_hierarchy_configs(
    l1i_kib: int = 128, l2i_kib: int = 4096, timing=None
) -> List[CacheLevelConfig]:
    """The z15-like I-side hierarchy (L3 modelled as a large backstop)."""
    l1_latency = timing.l1i_latency if timing else 4
    l2_extra = timing.l2i_extra_latency if timing else 8
    l3_extra = timing.l3_extra_latency if timing else 45
    return [
        CacheLevelConfig("L1I", l1i_kib * 1024, latency=l1_latency),
        CacheLevelConfig("L2I", l2i_kib * 1024, latency=l1_latency + l2_extra),
        CacheLevelConfig("L3", 64 * 1024 * 1024, latency=l1_latency + l3_extra),
    ]


@dataclass
class AccessResult:
    """Outcome of one hierarchy access."""

    latency: int
    level: str


class InstructionCacheHierarchy:
    """An inclusive multi-level I-side hierarchy with a prefetch port."""

    def __init__(
        self,
        levels: Optional[List[CacheLevelConfig]] = None,
        memory_latency: int = 250,
    ):
        configs = levels if levels is not None else z15_hierarchy_configs()
        if not configs:
            raise ConfigError("at least one cache level is required")
        self.levels = [CacheLevel(config) for config in configs]
        self.memory_latency = memory_latency
        self.demand_accesses = 0
        self.prefetches = 0
        self.useless_prefetch_filter = 0

    @property
    def line_size(self) -> int:
        return self.levels[0].config.line_size

    def access(self, address: int) -> AccessResult:
        """Demand access: the first hitting level's latency; all upper
        levels are filled (inclusive)."""
        self.demand_accesses += 1
        for depth, level in enumerate(self.levels):
            if level.access(address):
                for upper in self.levels[:depth]:
                    upper.fill(address)
                return AccessResult(latency=level.config.latency, level=level.config.name)
        for level in self.levels:
            level.fill(address)
        return AccessResult(latency=self.memory_latency, level="memory")

    def prefetch(self, address: int) -> Optional[AccessResult]:
        """Prefetch a line toward the L1I.

        Returns the fill latency the prefetch will take (None when the
        line is already L1-resident, making the prefetch a no-op).
        """
        if self.levels[0].probe(address):
            self.useless_prefetch_filter += 1
            return None
        self.prefetches += 1
        for depth, level in enumerate(self.levels[1:], start=1):
            if level.probe(address):
                for upper in self.levels[:depth]:
                    upper.fill(address)
                return AccessResult(
                    latency=level.config.latency, level=level.config.name
                )
        for level in self.levels:
            level.fill(address)
        return AccessResult(latency=self.memory_latency, level="memory")

    def level_stats(self) -> List[Tuple[str, int, int]]:
        """Per level: (name, accesses, hits)."""
        return [
            (level.config.name, level.accesses, level.hits)
            for level in self.levels
        ]
