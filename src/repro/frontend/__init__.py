"""Front-end substrate: the instruction-cache hierarchy."""

from repro.frontend.icache import (
    AccessResult,
    CacheLevel,
    CacheLevelConfig,
    InstructionCacheHierarchy,
    z15_hierarchy_configs,
)

__all__ = [
    "AccessResult",
    "CacheLevel",
    "CacheLevelConfig",
    "InstructionCacheHierarchy",
    "z15_hierarchy_configs",
]
