"""Fleet sweeps: thousand-cell design-space grids over the warm pool.

The z15 design space (generation configs × workloads × seeds ×
fault plans × predictor backends) is evaluated as one flat grid of
independent cells.  This module builds that grid — sharing each
workload Program across every cell that uses it, so the serialize-once
registry ships it to each worker exactly once — and runs it twice
(sequential reference, then warm-pool parallel) to produce the merged
``BENCH_fleet.json`` artifact: throughput both ways, the measured
speedup, and the byte-identical equivalence verdict that makes the
speedup trustworthy.

``python -m repro fleet`` is the CLI front end; the CI fleet-smoke job
runs a reduced grid and gates on ``speedup >= 1.0`` whenever the runner
has at least two cores.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.configs import GENERATIONS
from repro.engine.parallel import (
    CellError,
    PayloadRegistry,
    SweepCell,
    run_cells,
    stream_cells,
)
from repro.engine.stream import (
    SweepStreamWriter,
    load_stream,
    restore_completed,
    result_to_row,
)
from repro.workloads import get_workload

#: Default workload axis: two dense kernels, a branchy dispatcher and a
#: pattern chain — the suite's structural corners.
DEFAULT_FLEET_WORKLOADS = (
    "compute-kernel", "transactions", "dispatch", "patterned",
)

#: Schema of the merged fleet artifact.
FLEET_SCHEMA = "repro-fleet/v1"


def build_fleet_grid(
    configs: Optional[Sequence[str]] = None,
    workloads: Sequence[str] = DEFAULT_FLEET_WORKLOADS,
    seeds: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
    backends: Sequence[str] = ("object", "array"),
    fault_rates: Sequence[float] = (0.0, 0.01),
    branches: int = 300,
    warmup: int = 100,
    fault_seed: int = 101,
    engine_modes: Sequence[str] = ("reference",),
) -> List[SweepCell]:
    """Cross (config × workload × seed × fault plan × backend ×
    engine mode) into one flat cell list, config-major order.

    Each (workload, seed) Program is built **once** and shared by every
    cell that runs it — the serialize-once registry then transfers it
    to each worker exactly once regardless of how many of the ~1000
    cells reference it.  A fault rate of 0.0 means a genuinely
    fault-free cell (no injector attached); non-zero rates share one
    deterministic :class:`~repro.resilience.FaultPlan` per rate.
    """
    from repro.resilience import FaultPlan

    config_names = list(configs) if configs else list(GENERATIONS)
    pairs: List[Tuple[str, object]] = []
    for name in config_names:
        factory, _ = GENERATIONS[name]
        pairs.append((name, factory()))
    programs = {
        (workload, seed): get_workload(workload, seed)
        for workload in workloads
        for seed in seeds
    }
    plans = {
        rate: (FaultPlan(seed=fault_seed, rate=rate).validate()
               if rate > 0 else None)
        for rate in fault_rates
    }
    cells = []
    for name, config in pairs:
        for backend in backends:
            for engine_mode in engine_modes:
                mode_suffix = "" if engine_mode == "reference" else "/fast"
                for rate in fault_rates:
                    suffix = f"/f{rate:g}" if rate > 0 else ""
                    label = f"{name}/{backend}{mode_suffix}{suffix}"
                    for workload in workloads:
                        for seed in seeds:
                            cells.append(SweepCell(
                                label=label,
                                config=config,
                                workload=programs[(workload, seed)],
                                seed=seed,
                                branches=branches,
                                warmup=warmup,
                                backend=backend,
                                engine_mode=engine_mode,
                                fault_plan=plans[rate],
                            ))
    return cells


def _rollup(results: Sequence, key) -> Dict[str, dict]:
    """Group in-worker elapsed/branches by a cell attribute."""
    groups: Dict[str, dict] = {}
    for result in results:
        if result.stats is None:
            continue
        bucket = groups.setdefault(key(result), {"branches": 0, "seconds": 0.0})
        bucket["branches"] += result.branches + result.warmup
        bucket["seconds"] += result.elapsed
    return {
        name: {
            "branches": bucket["branches"],
            "branches_per_second": (bucket["branches"] / bucket["seconds"]
                                    if bucket["seconds"] else 0.0),
        }
        for name, bucket in sorted(groups.items())
    }


def run_fleet(
    cells: Sequence[SweepCell],
    workers: int = 2,
    chunk_size: int = 16,
    timeout: Optional[float] = None,
    retries: int = 1,
    stream_out: Optional[str] = None,
    resume: Optional[str] = None,
    strict: bool = False,
    grid_info: Optional[dict] = None,
    spans=None,
    shutdown=None,
) -> Tuple[dict, list, list]:
    """Run the fleet grid sequentially and in parallel; return the
    merged ``BENCH_fleet.json`` payload plus both result lists.

    The sequential pass is the reference for both timing (speedup
    denominator) and correctness (the parallel pass must match it
    fingerprint-for-fingerprint).  ``stream_out`` checkpoints the
    parallel pass's rows to JSONL as they complete (with the fleet's
    run manifest embedded as the first line); ``resume`` pre-loads
    such a stream, skipping its completed cells (*strict* makes a torn
    resume tail an error instead of silently dropping it; the reported
    parallel
    wall then covers only the remaining work — ``resumed_cells`` in the
    payload says how many rows were inherited).  *spans*, when given a
    :class:`~repro.obs.spans.SpanTracer`, traces the parallel pass's
    pool lifecycle (see :func:`~repro.engine.parallel.stream_cells`).
    *shutdown* (a :class:`~repro.common.signals.GracefulShutdown`) is
    polled between streamed rows: when it fires, the row in flight is
    flushed, a trailing manifest line records the interruption, and the
    partial results are returned for the caller to exit ``128+signum``.
    """
    from repro.obs.manifest import build_manifest

    cells = list(cells)
    hardening = {"timeout": timeout, "retries": retries}
    seq_stats: dict = {}
    start = time.perf_counter()
    seq_results = run_cells(cells, workers=1, pool_stats=seq_stats,
                            **hardening)
    seq_wall = time.perf_counter() - start

    registry = PayloadRegistry()
    completed: dict = {}
    if resume:
        completed = restore_completed(load_stream(resume, strict=strict),
                                      cells, registry)
    par_stats: dict = {}
    par_results: list = []
    grid = dict(grid_info or {}, cells=len(cells))
    manifest = build_manifest(
        "fleet",
        grid=grid,
        extra={"workers": workers, "chunk_size": chunk_size},
    )
    start = time.perf_counter()
    stream = stream_cells(cells, workers=workers, chunk_size=chunk_size,
                          completed=completed, pool_stats=par_stats,
                          spans=spans, **hardening)
    if stream_out:
        with SweepStreamWriter(stream_out, manifest=manifest) as writer:
            for index, result in enumerate(stream):
                writer.write(result_to_row(index, cells[index], result,
                                           registry))
                par_results.append(result)
                # Graceful drain: flush the row in flight, stamp the
                # interruption into a trailing manifest line (loaders
                # skip manifest rows, so the stream stays resumable)
                # and stop dispatching.  The caller owns the exit code.
                if shutdown is not None and shutdown.requested:
                    writer.write(dict(manifest, interrupted={
                        "signal": shutdown.signum,
                        "rows_written": writer.rows_written,
                        "cells_total": len(cells),
                    }))
                    break
    else:
        par_results = list(stream)
    par_wall = time.perf_counter() - start

    total_branches = sum(cell.branches + cell.warmup for cell in cells)
    equivalent = ([r.fingerprint for r in seq_results]
                  == [r.fingerprint for r in par_results])
    failed = sum(1 for r in par_results if isinstance(r, CellError))
    manifest["timings"] = {
        "wall_seconds": seq_wall + par_wall,
        "cpu_seconds": None,
    }
    payload = {
        "schema": FLEET_SCHEMA,
        #: Interprets the speedup: with one core the pool can only add
        #: overhead, so speedup ~<= 1 is the expected reading there.
        "cpu_count": os.cpu_count(),
        "manifest": manifest,
        "grid": grid,
        "payloads": {
            "distinct_blobs": par_stats.get("payload_blobs", 0),
            "bytes": par_stats.get("payload_bytes", 0),
            "parent_pickle_calls": par_stats.get("parent_pickle_calls", 0),
        },
        "results": {
            "blobs": par_stats.get("result_blobs", 0),
            "bytes": par_stats.get("result_bytes", 0),
            "bytes_unbatched": par_stats.get("result_bytes_unbatched", 0),
            "bytes_saved": par_stats.get("result_bytes_saved", 0),
        },
        "sequential": {
            "wall_seconds": seq_wall,
            "branches_per_second": total_branches / seq_wall,
        },
        "parallel": {
            "workers": workers,
            "chunk_size": chunk_size,
            "wall_seconds": par_wall,
            "branches_per_second": total_branches / par_wall,
            "chunks_dispatched": par_stats.get("chunks_dispatched", 0),
            "rounds": par_stats.get("rounds", 0),
            "pool_breaks": par_stats.get("pool_breaks", 0),
            "worker_installs": {
                str(pid): stats.get("installs", 0)
                for pid, stats in sorted(
                    par_stats.get("workers", {}).items()
                )
            },
            "phase_latency": par_stats.get("phase_latency", {}),
        },
        "resumed_cells": par_stats.get("resumed_cells", 0),
        "speedup": seq_wall / par_wall if par_wall else 0.0,
        "equivalent": equivalent,
        "failed_cells": failed,
        "rollups": {
            "by_backend": _rollup(
                seq_results,
                lambda r: r.label.split("/")[1] if "/" in r.label else "object",
            ),
            "by_workload": _rollup(seq_results, lambda r: r.workload),
            "by_engine_mode": _rollup(
                seq_results,
                lambda r: "fast" if "/fast" in r.label else "reference",
            ),
        },
    }
    return payload, seq_results, par_results
