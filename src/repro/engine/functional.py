"""The functional simulation engine.

Drives any predictor implementing the *branch predictor protocol* (the
:class:`~repro.core.predictor.LookaheadBranchPredictor`, the array
backend in :mod:`repro.engine.array`, or one of the baselines) over a
workload, collecting :class:`~repro.stats.RunStats`.  This engine
measures *accuracy* (coverage, direction/target correctness, MPKI); the
cycle engine in :mod:`repro.engine.cycle` measures time.

The per-branch consume sequence lives in :mod:`repro.engine.kernel`,
shared with the cycle engine, so every backend runs one semantics
definition.
"""

from __future__ import annotations

import time
from itertools import chain
from typing import Iterable, Optional, Union

from repro.core.predictor import LookaheadBranchPredictor, PredictionOutcome
from repro.engine.kernel import (
    INSTRUCTIONS_PER_BRANCH,
    _chain_observers,
    drive_counted,
    run_warmup,
)
from repro.engine.specialize import effective_engine_mode, kernels_for
from repro.isa.dynamic import DynamicBranch
from repro.stats.metrics import RunStats
from repro.workloads.executor import Executor
from repro.workloads.multi import ContextSwitch, InterleavedRun
from repro.workloads.program import Program

__all__ = [
    "FunctionalEngine",
    "INSTRUCTIONS_PER_BRANCH",
    "_chain_observers",
]


class FunctionalEngine:
    """Feeds executed branches to a predictor and aggregates statistics.

    An optional *profile* (:class:`repro.stats.analysis.MispredictProfile`)
    receives every counted outcome for per-address analysis.  An optional
    *observer* callable receives every :class:`PredictionOutcome` —
    including warmup branches — in prediction order; the differential
    verification harness uses it to compare engines branch by branch.
    An optional *telemetry* session (:class:`repro.obs.session.
    TelemetrySession`, or anything with an ``observe(outcome)`` method)
    rides the same hook: its observe is chained after any explicit
    observer, so telemetry-off runs keep the ``observer is None`` fast
    path untouched.  An optional fault *injector*
    (:class:`repro.resilience.FaultInjector`, or anything with an
    ``observe(outcome)`` method) rides the same seam, chained last, so
    fault-off runs are byte-identical to pre-resilience builds.
    """

    def __init__(self, predictor: LookaheadBranchPredictor, profile=None,
                 observer=None, telemetry=None, injector=None,
                 engine_mode: str = "reference", spans=None):
        self.predictor = predictor
        self.stats = RunStats()
        self.profile = profile
        self.telemetry = telemetry
        self.injector = injector
        #: Optional :class:`repro.obs.spans.SpanTracer` receiving
        #: ``engine.warmup``/``engine.counted``/``engine.finalize`` phase
        #: timings from :meth:`run_program`.  Spans only observe — the
        #: default off path pays one truthiness check per phase and
        #: results stay byte-identical either way.
        self.spans = spans
        self.observer = _chain_observers(observer, telemetry, injector)
        #: The mode actually driving this engine: ``fast`` compiles (or
        #: fetches from cache) the config-specialized kernels; baseline
        #: predictors have no specialized kernel and silently fall back
        #: to ``reference``.
        self.engine_mode = effective_engine_mode(engine_mode, predictor)
        self._kernels = (
            kernels_for(predictor) if self.engine_mode == "fast" else None
        )

    def _record(self, outcome) -> None:
        self.stats.record(outcome)
        if self.profile is not None:
            self.profile.record(outcome)

    def run_program(
        self,
        program: Program,
        max_branches: int,
        seed: int = 1,
        warmup_branches: int = 0,
    ) -> RunStats:
        """Execute *program* and predict every branch.

        With *warmup_branches* the first that many branches train the
        predictor without being counted (steady-state measurement).
        """
        executor = Executor(program, seed=seed)
        self.predictor.restart(program.entry_point, context=0)
        observer = self.observer
        profile = self.profile
        spans = self.spans
        counted_instructions_start = 0
        stream = executor.run(max_branches=warmup_branches + max_branches)
        kernels = self._kernels
        if kernels is not None:
            predictor = self.predictor
            if warmup_branches > 0:
                if spans:
                    phase_start = time.perf_counter()
                if observer is None:
                    consumed = kernels.warmup_bare(
                        predictor, stream, warmup_branches
                    )
                else:
                    consumed = kernels.warmup_observed(
                        predictor, stream, warmup_branches, observer
                    )
                if spans:
                    spans.observe("engine.warmup",
                                  time.perf_counter() - phase_start,
                                  branches=warmup_branches)
                if consumed == warmup_branches:
                    counted_instructions_start = executor.instructions_executed
            if spans:
                phase_start = time.perf_counter()
            if observer is None and profile is None:
                kernels.counted_bare(predictor, stream, self.stats)
            else:
                kernels.counted_observed(
                    predictor,
                    stream,
                    self.stats,
                    observer,
                    profile.record if profile is not None else None,
                )
            if spans:
                spans.observe("engine.counted",
                              time.perf_counter() - phase_start,
                              branches=max_branches)
        else:
            predict = self.predictor.predict_and_resolve
            if warmup_branches > 0:
                if spans:
                    phase_start = time.perf_counter()
                consumed = run_warmup(
                    predict, stream, warmup_branches, observer
                )
                if spans:
                    spans.observe("engine.warmup",
                                  time.perf_counter() - phase_start,
                                  branches=warmup_branches)
                if consumed == warmup_branches:
                    counted_instructions_start = executor.instructions_executed
            if spans:
                phase_start = time.perf_counter()
            drive_counted(
                predict,
                stream,
                self.stats.record,
                observer=observer,
                extra=profile.record if profile is not None else None,
            )
            if spans:
                spans.observe("engine.counted",
                              time.perf_counter() - phase_start,
                              branches=max_branches)
        if spans:
            with spans.span("engine.finalize"):
                self.predictor.finalize()
        else:
            self.predictor.finalize()
        self.stats.instructions = (
            executor.instructions_executed - counted_instructions_start
        )
        return self.stats

    def run_branches(
        self,
        branches: Iterable[DynamicBranch],
        instructions: Optional[int] = None,
        restart_at: Optional[int] = None,
    ) -> RunStats:
        """Predict a pre-recorded branch stream (e.g. a loaded trace)."""
        observer = self.observer
        profile = self.profile
        kernels = self._kernels
        if kernels is not None:
            count = 0
            iterator = iter(branches)
            head = next(iterator, None)
            if head is not None:
                start = restart_at if restart_at is not None else head.address
                self.predictor.restart(start, context=head.context)
                stream = chain((head,), iterator)
                if observer is None and profile is None:
                    count = kernels.counted_bare(
                        self.predictor, stream, self.stats
                    )
                else:
                    count = kernels.counted_observed(
                        self.predictor,
                        stream,
                        self.stats,
                        observer,
                        profile.record if profile is not None else None,
                    )
            self.predictor.finalize()
            if instructions is not None:
                self.stats.instructions = instructions
            else:
                self.stats.instructions = count * INSTRUCTIONS_PER_BRANCH
                self.stats.instructions_approximate = True
            return self.stats
        predict = self.predictor.predict_and_resolve
        record = self.stats.record
        fast = observer is None and profile is None
        first = True
        count = 0
        for branch in branches:
            if first:
                start = restart_at if restart_at is not None else branch.address
                self.predictor.restart(start, context=branch.context)
                first = False
            outcome = predict(branch)
            if fast:
                record(outcome)
            else:
                if observer is not None:
                    observer(outcome)
                self._record(outcome)
            count += 1
        self.predictor.finalize()
        if instructions is not None:
            self.stats.instructions = instructions
        else:
            # Without real instruction counts, approximate with the
            # paper's branch density and flag the derived MPKI.
            self.stats.instructions = count * INSTRUCTIONS_PER_BRANCH
            self.stats.instructions_approximate = True
        return self.stats

    def run_events(
        self,
        events: Iterable[Union[DynamicBranch, ContextSwitch]],
        instructions: Optional[int] = None,
    ) -> RunStats:
        """Drive an interleaved multi-context event stream."""
        observer = self.observer
        profile = self.profile
        kernels = self._kernels
        if kernels is not None:
            if observer is None and profile is None:
                count = kernels.events_bare(self.predictor, events, self.stats)
            else:
                count = kernels.events_observed(
                    self.predictor,
                    events,
                    self.stats,
                    observer,
                    profile.record if profile is not None else None,
                )
            self.predictor.finalize()
            if instructions is not None:
                self.stats.instructions = instructions
            else:
                self.stats.instructions = count * INSTRUCTIONS_PER_BRANCH
                self.stats.instructions_approximate = True
            return self.stats
        predict = self.predictor.predict_and_resolve
        record = self.stats.record
        fast = observer is None and profile is None
        count = 0
        for event in events:
            if isinstance(event, ContextSwitch):
                self.predictor.context_switch(
                    event.entry_point, event.context, event.thread
                )
                continue
            outcome = predict(event)
            if fast:
                record(outcome)
            else:
                if observer is not None:
                    observer(outcome)
                self._record(outcome)
            count += 1
        self.predictor.finalize()
        if instructions is not None:
            self.stats.instructions = instructions
        else:
            self.stats.instructions = count * INSTRUCTIONS_PER_BRANCH
            self.stats.instructions_approximate = True
        return self.stats

    def run_interleaved(
        self, run: InterleavedRun, total_branches: int
    ) -> RunStats:
        """Convenience wrapper for :class:`InterleavedRun`."""
        stats = self.run_events(run.run(total_branches))
        stats.instructions = run.instructions_executed
        stats.instructions_approximate = False
        return stats
