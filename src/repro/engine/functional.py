"""The functional simulation engine.

Drives any predictor implementing the *branch predictor protocol* (the
:class:`~repro.core.predictor.LookaheadBranchPredictor` or one of the
baselines) over a workload, collecting :class:`~repro.stats.RunStats`.
This engine measures *accuracy* (coverage, direction/target correctness,
MPKI); the cycle engine in :mod:`repro.engine.cycle` measures time.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from repro.core.predictor import LookaheadBranchPredictor, PredictionOutcome
from repro.isa.dynamic import DynamicBranch
from repro.stats.metrics import RunStats
from repro.workloads.executor import Executor
from repro.workloads.multi import ContextSwitch, InterleavedRun
from repro.workloads.program import Program


class FunctionalEngine:
    """Feeds executed branches to a predictor and aggregates statistics.

    An optional *profile* (:class:`repro.stats.analysis.MispredictProfile`)
    receives every counted outcome for per-address analysis.  An optional
    *observer* callable receives every :class:`PredictionOutcome` —
    including warmup branches — in prediction order; the differential
    verification harness uses it to compare engines branch by branch.
    """

    def __init__(self, predictor: LookaheadBranchPredictor, profile=None,
                 observer=None):
        self.predictor = predictor
        self.stats = RunStats()
        self.profile = profile
        self.observer = observer

    def _record(self, outcome) -> None:
        self.stats.record(outcome)
        if self.profile is not None:
            self.profile.record(outcome)

    def run_program(
        self,
        program: Program,
        max_branches: int,
        seed: int = 1,
        warmup_branches: int = 0,
    ) -> RunStats:
        """Execute *program* and predict every branch.

        With *warmup_branches* the first that many branches train the
        predictor without being counted (steady-state measurement).
        """
        executor = Executor(program, seed=seed)
        self.predictor.restart(program.entry_point, context=0)
        counted_instructions_start = 0
        for index, branch in enumerate(
            executor.run(max_branches=warmup_branches + max_branches)
        ):
            outcome = self.predictor.predict_and_resolve(branch)
            if self.observer is not None:
                self.observer(outcome)
            if index == warmup_branches - 1:
                counted_instructions_start = executor.instructions_executed
            if index >= warmup_branches:
                self._record(outcome)
        self.predictor.finalize()
        self.stats.instructions = (
            executor.instructions_executed - counted_instructions_start
        )
        return self.stats

    def run_branches(
        self,
        branches: Iterable[DynamicBranch],
        instructions: Optional[int] = None,
        restart_at: Optional[int] = None,
    ) -> RunStats:
        """Predict a pre-recorded branch stream (e.g. a loaded trace)."""
        first = True
        count = 0
        for branch in branches:
            if first:
                start = restart_at if restart_at is not None else branch.address
                self.predictor.restart(start, context=branch.context)
                first = False
            outcome = self.predictor.predict_and_resolve(branch)
            if self.observer is not None:
                self.observer(outcome)
            self._record(outcome)
            count += 1
        self.predictor.finalize()
        # Without real instruction counts, approximate with the paper's
        # 1-branch-in-4 density.
        self.stats.instructions = (
            instructions if instructions is not None else count * 4
        )
        return self.stats

    def run_events(
        self,
        events: Iterable[Union[DynamicBranch, ContextSwitch]],
        instructions: Optional[int] = None,
    ) -> RunStats:
        """Drive an interleaved multi-context event stream."""
        count = 0
        for event in events:
            if isinstance(event, ContextSwitch):
                self.predictor.context_switch(
                    event.entry_point, event.context, event.thread
                )
                continue
            outcome = self.predictor.predict_and_resolve(event)
            if self.observer is not None:
                self.observer(outcome)
            self._record(outcome)
            count += 1
        self.predictor.finalize()
        self.stats.instructions = (
            instructions if instructions is not None else count * 4
        )
        return self.stats

    def run_interleaved(
        self, run: InterleavedRun, total_branches: int
    ) -> RunStats:
        """Convenience wrapper for :class:`InterleavedRun`."""
        stats = self.run_events(run.run(total_branches))
        stats.instructions = run.instructions_executed
        return stats
