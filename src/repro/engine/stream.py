"""Sweep checkpoint streams: JSONL result rows, written as they
complete, loadable to resume a killed sweep.

:func:`~repro.engine.parallel.stream_cells` yields results merged into
submission order, so writing each row as it arrives checkpoints a
strict prefix of the final result list.  This module is the row codec
around that contract:

* :func:`result_to_row` / :func:`row_to_result` — lossless-for-the-
  contract JSON encoding of :class:`~repro.engine.parallel.SweepResult`
  and :class:`~repro.engine.parallel.CellError` rows.  Stats objects
  are flattened to their engine-independent invariant slice (the same
  ``comparable_stats`` dict the fingerprint hashes) plus the derived
  headline metrics; a restored row exposes them through a read-only
  :class:`RestoredStats` view.
* :class:`SweepStreamWriter` — append-one-line-per-row JSONL writer,
  flushed per row so a killed process loses at most the torn tail line.
* :func:`load_stream` — re-reads a stream, tolerating exactly that torn
  tail (a partial final line is dropped; corruption anywhere else
  raises :class:`~repro.common.errors.SweepStreamError`).
* :func:`restore_completed` — validates loaded rows against the grid
  being resumed (every row must sit at its submission index and match
  the cell's content fingerprint) and returns the ``completed`` mapping
  ``stream_cells`` accepts.

The determinism contract extends through the stream: resuming a killed
sweep from its partial stream produces the identical merged result set
(fingerprints, stats, ordering; only per-row wall-clock ``elapsed``
reflects whichever run actually executed the cell).

Schema: ``repro-sweep-stream/v1``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.common.atomic import append_line
from repro.common.errors import SweepStreamError
from repro.engine.parallel import (
    CellError,
    PayloadRegistry,
    SweepCell,
    SweepResult,
    cell_fingerprint,
)

STREAM_SCHEMA = "repro-sweep-stream/v1"


class RestoredStats:
    """Read-only attribute view over a checkpointed stats row.

    Exposes the flattened invariant slice (``branches``, ``mpki``,
    ``dynamic_coverage``, ...; ``cycles``/``accuracy`` for cycle cells)
    by attribute, like the live RunStats/CycleStats it replaces — enough
    for report tables and payload assembly.  It is *not* a RunStats: it
    cannot be re-fingerprinted or folded into; the row's recorded
    fingerprint is the identity a resumed sweep carries forward.
    """

    def __init__(self, data: Mapping[str, object]) -> None:
        fields = dict(data)
        if isinstance(fields.get("accuracy"), dict):
            fields["accuracy"] = RestoredStats(fields["accuracy"])
        self._data = fields

    def __getattr__(self, name: str):
        try:
            return self._data[name]
        except KeyError:
            raise AttributeError(
                f"restored stats row has no field {name!r}"
            ) from None

    def __eq__(self, other) -> bool:
        if isinstance(other, RestoredStats):
            return self._data == other._data
        return NotImplemented

    def __repr__(self) -> str:
        return f"RestoredStats({sorted(self._data)})"

    def to_dict(self) -> dict:
        data = dict(self._data)
        if isinstance(data.get("accuracy"), RestoredStats):
            data["accuracy"] = data["accuracy"].to_dict()
        return data


def _accuracy_dict(stats) -> dict:
    """The invariant slice plus derived headline metrics of a RunStats
    (mirrors the CLI's machine-readable stats payload)."""
    from repro.verification.differential import comparable_stats

    payload = comparable_stats(stats)
    payload["instructions_approximate"] = stats.instructions_approximate
    payload["dynamic_coverage"] = stats.dynamic_coverage
    payload["direction_accuracy"] = stats.direction_accuracy
    payload["branch_mpki"] = stats.branch_mpki
    payload["mpki"] = stats.mpki
    return payload


#: CycleStats scalar fields carried verbatim into a cycle row.
_CYCLE_FIELDS = (
    "cycles", "instructions", "branches", "bpl_wait_cycles",
    "fetch_wait_cycles", "restart_cycles", "exposed_miss_cycles",
    "hidden_miss_cycles", "cpred_redirects", "taken_redirects", "restarts",
)


def _stats_to_dict(stats, engine: str) -> dict:
    if isinstance(stats, RestoredStats):
        return stats.to_dict()
    if engine == "cycle":
        payload = {name: getattr(stats, name) for name in _CYCLE_FIELDS}
        payload["cpi"] = stats.cpi
        payload["ipc"] = stats.ipc
        payload["cache_levels"] = stats.cache_levels
        payload["accuracy"] = _accuracy_dict(stats.accuracy)
        return payload
    return _accuracy_dict(stats)


def _cell_identity(index: int, cell: SweepCell,
                   registry: Optional[PayloadRegistry]) -> dict:
    return {
        "index": index,
        "key": cell_fingerprint(cell, registry),
        "label": cell.label,
        "workload": cell.workload_name,
        "seed": cell.seed,
        "branches": cell.branches,
        "warmup": cell.warmup,
        "engine": cell.engine,
        "backend": cell.backend,
        "engine_mode": cell.engine_mode,
    }


def result_to_row(
    index: int,
    cell: SweepCell,
    result: Union[SweepResult, CellError],
    registry: Optional[PayloadRegistry] = None,
) -> dict:
    """Encode one result (at its submission *index*) as a JSONL row.

    Pass a shared :class:`PayloadRegistry` when encoding a whole sweep
    so each distinct Program is pickled once for its content key rather
    than once per row.
    """
    row = {
        "schema": STREAM_SCHEMA,
        "cell": _cell_identity(index, cell, registry),
        "fingerprint": result.fingerprint,
        "elapsed": result.elapsed,
        "telemetry": result.telemetry,
        "faults": result.faults,
    }
    if isinstance(result, CellError):
        row["status"] = "error"
        row["stats"] = None
        row["error"] = {
            "kind": result.kind,
            "message": result.message,
            "attempts": result.attempts,
        }
    else:
        row["status"] = "ok"
        row["stats"] = _stats_to_dict(result.stats, cell.engine)
        row["error"] = None
    return row


def row_to_result(row: Mapping) -> Union[SweepResult, CellError]:
    """Decode one stream row back into its result object.

    An "ok" row's ``stats`` comes back as a :class:`RestoredStats`
    view; its ``fingerprint`` is the recorded digest, so sweep
    equivalence checks over restored rows remain string comparisons.
    """
    cell = row["cell"]
    identity = {
        "label": cell["label"],
        "workload": cell["workload"],
        "seed": cell["seed"],
        "branches": cell["branches"],
        "warmup": cell["warmup"],
    }
    if row["status"] == "error":
        error = row["error"]
        return CellError(
            kind=error["kind"],
            message=error["message"],
            attempts=error["attempts"],
            elapsed=row.get("elapsed", 0.0),
            telemetry=row.get("telemetry"),
            faults=row.get("faults"),
            **identity,
        )
    result = SweepResult(
        stats=RestoredStats(row["stats"]),
        fingerprint=row["fingerprint"],
        elapsed=row.get("elapsed", 0.0),
        telemetry=row.get("telemetry"),
        faults=row.get("faults"),
        **identity,
    )
    return result


class SweepStreamWriter:
    """Append sweep rows to a JSONL file, one flushed line per row.

    Flushing per row bounds the damage of a killed sweep to the torn
    final line, which :func:`load_stream` drops on reload.

    Pass a run *manifest* (:func:`repro.obs.manifest.build_manifest`)
    to embed it as the stream's first line; :func:`load_stream` skips
    it (so result-row consumers are unaffected) and
    :func:`load_stream_manifest` retrieves it.
    """

    def __init__(self, path: str, manifest: Optional[dict] = None,
                 fsync: bool = True) -> None:
        self.path = path
        self._stream = open(path, "w")
        #: Checkpoint rows exist to survive a kill, so each one is
        #: fsynced through to the device by default (rows are per sweep
        #: cell — far off the simulation hot path).
        self.fsync = fsync
        self.rows_written = 0
        if manifest is not None:
            from repro.obs.manifest import validate_manifest

            validate_manifest(manifest)
            append_line(self._stream, json.dumps(manifest, sort_keys=True),
                        fsync=self.fsync)

    def write(self, row: Mapping) -> None:
        append_line(self._stream, json.dumps(row, sort_keys=True),
                    fsync=self.fsync)
        self.rows_written += 1

    def close(self) -> None:
        if not self._stream.closed:
            self._stream.close()

    def __enter__(self) -> "SweepStreamWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_stream(path: str, strict: bool = False) -> List[dict]:
    """Load a (possibly truncated) checkpoint stream.

    A torn *final* line — the signature of a killed writer — is
    silently dropped, unless *strict* is set (the CLI ``--strict``
    mode), in which case it raises like any other corruption.  An
    embedded run-manifest row (the optional first line,
    ``repro-manifest/v1``) is skipped — result consumers see only
    result rows; use :func:`load_stream_manifest` for the manifest.  A
    malformed line anywhere else, or a row of the wrong schema, raises
    :class:`SweepStreamError` naming the line number and byte offset.
    """
    from repro.common.jsonl import format_location, iter_jsonl
    from repro.obs.manifest import is_manifest

    rows: List[dict] = []
    for lineno, offset, row in iter_jsonl(path, strict=strict,
                                          error=SweepStreamError):
        if is_manifest(row):
            continue
        if not isinstance(row, dict) or row.get("schema") != STREAM_SCHEMA:
            raise SweepStreamError(
                f"{format_location(path, lineno, offset)}: "
                f"not a {STREAM_SCHEMA} row"
            )
        rows.append(row)
    return rows


def load_stream_manifest(path: str) -> Optional[dict]:
    """The run manifest embedded in a stream's first line, or None for
    streams written without one (pre-manifest files stay loadable)."""
    from repro.obs.manifest import is_manifest

    with open(path) as stream:
        first = stream.readline().strip()
    if not first:
        return None
    try:
        row = json.loads(first)
    except json.JSONDecodeError:
        return None  # torn single-line file
    return row if is_manifest(row) else None


def restore_completed(
    rows: Sequence[Mapping],
    cells: Sequence[SweepCell],
    registry: Optional[PayloadRegistry] = None,
) -> Dict[int, Union[SweepResult, CellError]]:
    """Validate loaded rows against the grid being resumed and build the
    ``completed`` mapping for :func:`~repro.engine.parallel.
    stream_cells`.

    Every row must sit inside the grid and carry the content fingerprint
    of the cell at its index — a stream from a different sweep (other
    configs, workload payloads, seeds or grid order) is rejected rather
    than silently merged.  Duplicate indices must agree.
    """
    registry = registry if registry is not None else PayloadRegistry()
    keys = [cell_fingerprint(cell, registry) for cell in cells]
    completed: Dict[int, Union[SweepResult, CellError]] = {}
    seen: Dict[int, str] = {}
    for row in rows:
        identity = row["cell"]
        index = identity["index"]
        if not 0 <= index < len(cells):
            raise SweepStreamError(
                f"stream row index {index} outside grid of "
                f"{len(cells)} cells"
            )
        if identity["key"] != keys[index]:
            raise SweepStreamError(
                f"stream row {index} ({identity['label']}/"
                f"{identity['workload']}/seed {identity['seed']}) does "
                f"not match this sweep's cell at that slot — resuming a "
                f"different sweep?"
            )
        if index in seen and seen[index] != row["fingerprint"]:
            raise SweepStreamError(
                f"stream contains conflicting rows for cell {index}"
            )
        seen[index] = row["fingerprint"]
        completed[index] = row_to_result(row)
    return completed
