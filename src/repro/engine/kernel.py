"""The shared prediction kernel every engine drives.

The functional engine, the cycle engine and the array backend all drive
the same per-branch protocol: ``predict_and_resolve`` on a predictor,
an optional observer chain (explicit observer, telemetry session, fault
injector), then stats recording.  This module is the single home of
that semantics definition — the engines differ only in *what else* they
do around each branch (nothing, timing, or nothing-but-faster-arrays),
never in how a branch flows through the predictor.

Keeping the consume sequence here means a divergence between engines
can only come from the predictor backend itself, which is exactly what
the differential harness (:mod:`repro.verification.differential`) is
built to localise.
"""

from __future__ import annotations

#: Instructions assumed per executed branch when a branch stream carries
#: no real instruction counts: the classic ~1-branch-in-4 dynamic
#: density of the branch-heavy commercial footprints the paper's
#: predictor targets.  MPKI derived through this approximation is
#: exactly ``branch_mpki / INSTRUCTIONS_PER_BRANCH`` and is flagged via
#: ``RunStats.instructions_approximate``.
INSTRUCTIONS_PER_BRANCH = 4


def _chain_observers(observer, telemetry, injector=None):
    """Compose an explicit observer, a telemetry session's observe and a
    fault injector's observe into one per-branch callback.

    Returns None when none is attached, preserving the engines'
    per-branch ``observer is None`` fast paths; a single consumer is
    returned unwrapped (no indirection for the common one-hook case).
    The injector runs last: faults land after the branch's own updates,
    like a soft error striking between predictions.
    """
    callbacks = [callback for callback in (
        observer,
        telemetry.observe if telemetry is not None else None,
        injector.observe if injector is not None else None,
    ) if callback is not None]
    if not callbacks:
        return None
    if len(callbacks) == 1:
        return callbacks[0]

    def chained(outcome, _callbacks=tuple(callbacks)):
        for callback in _callbacks:
            callback(outcome)

    return chained


def predict_one(predict, branch, observer, record):
    """Drive one branch through the shared consume sequence.

    ``predict`` -> observer (when attached) -> ``record``; returns the
    outcome for engines that do per-branch work of their own (the cycle
    engine's timing advance).  The order is part of the cross-engine
    contract: observers see the outcome before stats accumulate it.
    """
    outcome = predict(branch)
    if observer is not None:
        observer(outcome)
    record(outcome)
    return outcome


def run_warmup(predict, stream, warmup_branches, observer):
    """Drive the uncounted warmup prefix of *stream*.

    Warmup branches train the predictor and are shown to observers (the
    differential harness compares them too) but are never recorded into
    stats.  Returns the number of branches consumed, which is less than
    *warmup_branches* only when the stream ran dry.
    """
    consumed = 0
    for branch in stream:
        outcome = predict(branch)
        if observer is not None:
            observer(outcome)
        consumed += 1
        if consumed == warmup_branches:
            break
    return consumed


def drive_counted(predict, stream, record, observer=None, extra=None):
    """The counted per-branch loop, specialised on attached consumers.

    *record* is the stats sink (``RunStats.record``); *extra* an
    optional second recorder (a mispredict profile).  The loop body is
    the same consume sequence as :func:`predict_one`, unrolled into
    per-combination loops so the common no-consumer case carries no
    invariant is-None checks per branch.
    """
    if observer is None and extra is None:
        for branch in stream:
            record(predict(branch))
    elif observer is None:
        for branch in stream:
            outcome = predict(branch)
            record(outcome)
            extra(outcome)
    elif extra is None:
        for branch in stream:
            outcome = predict(branch)
            observer(outcome)
            record(outcome)
    else:
        for branch in stream:
            outcome = predict(branch)
            observer(outcome)
            record(outcome)
            extra(outcome)
