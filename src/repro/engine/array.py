"""The array-backed prediction backend.

:class:`ArrayLookaheadBranchPredictor` is the full z15 prediction logic
of :class:`~repro.core.predictor.LookaheadBranchPredictor` running over
the array structures of :mod:`repro.structures.arrays`: bit-packed SWAR
tag mirrors for the BTB1/BTB2 and TAGE tables, flat contiguous weight
buffers for the perceptron.  Every behavioural decision — walk order,
replacement, counters, corruption draws — is inherited or transcribed
bit-for-bit, so the backend produces byte-identical branch streams,
RunStats and fingerprints; the cross-backend battery in
``tests/engine/test_array_equivalence.py`` and the ``verify-diff`` CLI
prove it rather than trust it.

The backend plugs in through the ``_make_*`` structure factories on the
predictor, so it composes with both drive engines: wrap it in a
:class:`~repro.engine.functional.FunctionalEngine` or
:class:`~repro.engine.cycle.CycleEngine` exactly like the object
predictor.  :func:`create_predictor` is the one registry every
consumer (CLI, sweep cells, differential harness, benchmarks) selects
backends through.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.configs.predictor import PredictorConfig
from repro.core.predictor import LookaheadBranchPredictor
from repro.structures.arrays import (
    NUMPY_AVAILABLE,
    ArrayBtb1,
    ArrayBtb2,
    ArrayPerceptron,
    ArrayTagePht,
)

__all__ = [
    "ArrayLookaheadBranchPredictor",
    "BACKENDS",
    "create_predictor",
    "predictor_class",
    "NUMPY_AVAILABLE",
]


class ArrayLookaheadBranchPredictor(LookaheadBranchPredictor):
    """The z15 prediction logic over array-backed structures."""

    backend = "array"

    def _make_btb1(self, config) -> ArrayBtb1:
        return ArrayBtb1(config)

    def _make_btb2(self, config) -> ArrayBtb2:
        return ArrayBtb2(config, self.btb1)

    def _make_tage(self, config, gpv_bits_per_branch: int) -> ArrayTagePht:
        return ArrayTagePht(config, gpv_bits_per_branch)

    def _make_perceptron(self, config, gpv_width: int) -> ArrayPerceptron:
        return ArrayPerceptron(config, gpv_width)


#: backend name -> predictor class.  "object" is the reference model;
#: "array" the accelerated twin proven equivalent by the differential
#: battery.
BACKENDS: Dict[str, Type[LookaheadBranchPredictor]] = {
    "object": LookaheadBranchPredictor,
    "array": ArrayLookaheadBranchPredictor,
}


def predictor_class(backend: str) -> Type[LookaheadBranchPredictor]:
    """The predictor class registered under *backend*."""
    try:
        return BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown predictor backend {backend!r}; "
            f"choose from {sorted(BACKENDS)}"
        ) from None


def create_predictor(
    config: PredictorConfig, backend: str = "object"
) -> LookaheadBranchPredictor:
    """Build a predictor for *config* on the chosen *backend*."""
    return predictor_class(backend)(config)
