"""The cycle-level engine.

A trace-driven timing model of the z15 front end around the functional
predictor: it reproduces the pipeline behaviours the paper quantifies —
the 6-cycle b0..b5 search pipeline and its taken-branch intervals
(5 ST / 6 SMT2 / 2 with CPRED, figures 4-7), the 64B-per-cycle search
versus 32B-per-cycle fetch race (section IV), restart penalties (~26
cycles, ~35 statistical, section II.D), and lookahead I-cache
prefetching that hides miss latency (sections II.C, IV).

It is a cycle-*level* model, not RTL-exact: the out-of-order back end is
summarised by the paper's own statistical penalties.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.configs.timing import TimingConfig
from repro.core.predictor import LookaheadBranchPredictor, PredictionOutcome
from repro.engine.kernel import _chain_observers, predict_one
from repro.engine.specialize import effective_engine_mode, kernels_for
from repro.frontend.icache import InstructionCacheHierarchy
from repro.stats.metrics import MispredictClass, RunStats, classify
from repro.workloads.executor import Executor
from repro.workloads.program import Program


@dataclass
class CycleStats:
    """Timing results of one cycle-level run."""

    cycles: int = 0
    instructions: int = 0
    branches: int = 0
    #: Cycles the dispatch stage waited on branch prediction delivery.
    bpl_wait_cycles: int = 0
    #: Cycles dispatch waited on instruction fetch (exposed I-miss etc).
    fetch_wait_cycles: int = 0
    #: Restart penalties (all flavours).
    restart_cycles: int = 0
    #: Exposed I-cache miss cycles after prefetch overlap.
    exposed_miss_cycles: int = 0
    #: I-cache miss cycles hidden by lookahead prefetch.
    hidden_miss_cycles: int = 0
    #: Taken-branch redirects that ran at the CPRED-accelerated interval.
    cpred_redirects: int = 0
    taken_redirects: int = 0
    restarts: int = 0
    accuracy: RunStats = field(default_factory=RunStats)
    cache_levels: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def cpi(self) -> float:
        if self.instructions == 0:
            return 0.0
        return self.cycles / self.instructions

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    def report(self, title: str = "cycle run") -> str:
        lines = [
            f"== {title} ==",
            f"instructions:        {self.instructions}",
            f"branches:            {self.branches}",
            f"cycles:              {self.cycles}",
            f"CPI:                 {self.cpi:6.3f}",
            f"restart cycles:      {self.restart_cycles}"
            f"  ({self.restarts} restarts)",
            f"BPL wait cycles:     {self.bpl_wait_cycles}",
            f"fetch wait cycles:   {self.fetch_wait_cycles}",
            f"exposed miss cycles: {self.exposed_miss_cycles}",
            f"hidden miss cycles:  {self.hidden_miss_cycles}",
            f"taken redirects:     {self.taken_redirects}"
            f"  (CPRED-accelerated {self.cpred_redirects})",
            f"MPKI:                {self.accuracy.mpki:8.3f}",
        ]
        return "\n".join(lines)


@dataclass
class _Clocks:
    """Per-thread front-end clocks."""

    now: float = 0.0
    bpl_ready: float = 0.0
    fetch_clock: float = 0.0
    fetch_point: int = 0


class CycleEngine:
    """Drives a program through the predictor with front-end timing."""

    def __init__(
        self,
        predictor: LookaheadBranchPredictor,
        icache: Optional[InstructionCacheHierarchy] = None,
        timing: Optional[TimingConfig] = None,
        smt2: bool = False,
        lookahead_prefetch: bool = True,
        observer=None,
        telemetry=None,
        injector=None,
        engine_mode: str = "reference",
        spans=None,
    ):
        self.predictor = predictor
        self.icache = icache if icache is not None else InstructionCacheHierarchy()
        self.timing = (timing if timing is not None else TimingConfig()).validate()
        self.smt2 = smt2
        self.lookahead_prefetch = lookahead_prefetch
        #: Optional callable receiving every PredictionOutcome in
        #: prediction order (differential cross-engine checking); an
        #: optional telemetry session and fault injector ride the same
        #: hook (see :class:`repro.engine.functional.FunctionalEngine`).
        self.telemetry = telemetry
        self.injector = injector
        #: Optional :class:`repro.obs.spans.SpanTracer` receiving the
        #: ``engine.counted``/``engine.finalize`` phase timings of
        #: :meth:`run_program` (the cycle engine has no warmup phase).
        #: Spans only observe; results are identical with tracing off.
        self.spans = spans
        self.observer = _chain_observers(observer, telemetry, injector)
        self.stats = CycleStats()
        #: Timing needs every per-branch outcome, so ``fast`` here swaps
        #: the reference ``predict_and_resolve`` pyramid for the flat
        #: single-branch specialized kernel (same outcome objects, same
        #: state transitions, fewer Python frames per branch).
        self.engine_mode = effective_engine_mode(engine_mode, predictor)
        self._kernels = (
            kernels_for(predictor) if self.engine_mode == "fast" else None
        )
        # Per-thread clocks (thread 0 for single-thread runs).
        self._clocks: Dict[int, _Clocks] = {}

    # ------------------------------------------------------------------
    # Derived rates
    # ------------------------------------------------------------------

    @property
    def _search_interval(self) -> int:
        """Cycles per sequential 64B search (SMT2 shares the one port)."""
        return 2 if self.smt2 else 1

    @property
    def _taken_interval(self) -> int:
        return (
            self.timing.taken_interval_smt2
            if self.smt2
            else self.timing.taken_interval_st
        )

    @property
    def _fetch_bytes_per_cycle(self) -> float:
        rate = self.timing.fetch_bytes_per_cycle
        return rate / 2 if self.smt2 else rate

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run_program(
        self, program: Program, max_branches: int, seed: int = 1
    ) -> CycleStats:
        executor = Executor(program, seed=seed)
        self.predictor.restart(program.entry_point, context=0)
        clocks = self._clocks_for(0)
        clocks.fetch_point = program.entry_point
        instructions_before = 0
        predict = self._predict_callable()
        observer = self.observer
        record = self.stats.accuracy.record
        spans = self.spans
        if spans:
            phase_start = time.perf_counter()
        while executor.branches_executed < max_branches:
            branch = executor.step()
            if branch is None:
                continue
            gap = executor.instructions_executed - instructions_before - 1
            instructions_before = executor.instructions_executed
            outcome = predict_one(predict, branch, observer, record)
            self._advance(clocks, branch, outcome, gap)
        if spans:
            spans.observe("engine.counted",
                          time.perf_counter() - phase_start,
                          branches=max_branches)
            with spans.span("engine.finalize"):
                self.predictor.finalize()
        else:
            self.predictor.finalize()
        self.stats.instructions = executor.instructions_executed
        self.stats.branches = executor.branches_executed
        self.stats.accuracy.instructions = executor.instructions_executed
        self.stats.cycles = int(clocks.now)
        for name, accesses, hits in self.icache.level_stats():
            self.stats.cache_levels[name] = {"accesses": accesses, "hits": hits}
        return self.stats

    def run_smt2(
        self, program_a: Program, program_b: Program,
        max_branches: int, seed: int = 1,
    ) -> CycleStats:
        """Two SMT threads through the shared predictor and I-cache.

        Each thread keeps its own clocks; the shared-port cost is the
        SMT2 search/fetch rates (construct the engine with ``smt2=True``).
        Total cycles = the slower thread's clock.
        """
        from repro.workloads.multi import ContextSwitch, Smt2Run

        run = Smt2Run(program_a, program_b, seed=seed)
        instructions_before = {0: 0, 1: 0}
        predict = self._predict_callable()
        observer = self.observer
        record = self.stats.accuracy.record
        for event in run.run(max_branches):
            if isinstance(event, ContextSwitch):
                self.predictor.restart(event.entry_point,
                                       context=event.context,
                                       thread=event.thread)
                self._clocks_for(event.thread).fetch_point = event.entry_point
                continue
            thread = event.thread
            executor = run._executors[thread]
            gap = (executor.instructions_executed
                   - instructions_before[thread] - 1)
            instructions_before[thread] = executor.instructions_executed
            outcome = predict_one(predict, event, observer, record)
            self._advance(self._clocks_for(thread), event, outcome, max(0, gap))
        self.predictor.finalize()
        self.stats.instructions = run.instructions_executed
        self.stats.branches = max_branches
        self.stats.accuracy.instructions = run.instructions_executed
        self.stats.cycles = int(max(c.now for c in self._clocks.values()))
        for name, accesses, hits in self.icache.level_stats():
            self.stats.cache_levels[name] = {"accesses": accesses, "hits": hits}
        return self.stats

    def _predict_callable(self):
        """The per-branch predict entry point for the selected mode."""
        if self._kernels is None:
            return self.predictor.predict_and_resolve
        kernel = self._kernels.predict_flat
        predictor = self.predictor

        def predict(branch, _kernel=kernel, _predictor=predictor):
            return _kernel(_predictor, branch)

        return predict

    def _clocks_for(self, thread: int) -> _Clocks:
        clocks = self._clocks.get(thread)
        if clocks is None:
            clocks = _Clocks()
            self._clocks[thread] = clocks
        return clocks

    # ------------------------------------------------------------------
    # Per-branch timing
    # ------------------------------------------------------------------

    def _advance(self, clocks: _Clocks, branch, outcome: PredictionOutcome,
                 gap: int) -> None:
        """Advance one thread's clocks across one branch (plus its
        leading non-branch instructions)."""
        timing = self.timing
        trace = outcome.trace
        record = outcome.record

        # --- BPL side: when was this branch's prediction delivered? ---
        searches = max(1, trace.lines_searched)
        b0_time = clocks.bpl_ready + (searches - 1) * self._search_interval
        delivered = b0_time + (timing.bpl_pipeline_depth - 1)
        if record.dynamic and record.predicted_taken:
            self.stats.taken_redirects += 1
            if trace.cpred_accelerated:
                interval = timing.taken_interval_cpred
                self.stats.cpred_redirects += 1
            else:
                interval = self._taken_interval
            clocks.bpl_ready = b0_time + interval
        else:
            clocks.bpl_ready = b0_time + self._search_interval

        # --- Fetch side: deliver bytes up to the end of the branch. ---
        fetch_end = branch.instruction.end_address
        self._fetch_lines(clocks, clocks.fetch_point, fetch_end, b0_time)
        if fetch_end > clocks.fetch_point:
            clocks.fetch_clock += (
                fetch_end - clocks.fetch_point
            ) / self._fetch_bytes_per_cycle
        clocks.fetch_point = fetch_end

        # --- Dispatch: strict synchronisation with prediction. ---
        base = clocks.now + gap / timing.dispatch_width
        dispatch_time = max(base, delivered, clocks.fetch_clock)
        if delivered > max(base, clocks.fetch_clock):
            self.stats.bpl_wait_cycles += int(
                delivered - max(base, clocks.fetch_clock)
            )
        elif clocks.fetch_clock > base:
            self.stats.fetch_wait_cycles += int(clocks.fetch_clock - base)
        clocks.now = dispatch_time

        # --- Bad predictions found during the walk. ---
        if trace.bad_taken_restarts:
            penalty = trace.bad_taken_restarts * timing.decode_restart_penalty
            self._apply_restart(clocks, penalty, resync_to=None)

        # --- Resolution ---
        klass = classify(outcome)
        if klass is MispredictClass.NONE:
            if branch.taken:
                # Correct taken prediction: fetch redirects to the target;
                # the redirect is free when the BPL ran ahead.
                clocks.fetch_clock = max(clocks.fetch_clock, delivered)
                clocks.fetch_point = branch.target
            return
        if klass is MispredictClass.SURPRISE_GUESSED_TAKEN_RELATIVE:
            self._apply_restart(clocks, timing.decode_restart_penalty,
                                branch.next_address)
        elif klass is MispredictClass.SURPRISE_GUESSED_TAKEN_INDIRECT:
            self._apply_restart(
                clocks,
                timing.decode_restart_penalty + timing.indirect_resolution_delay,
                branch.next_address,
            )
        else:
            self._apply_restart(
                clocks, timing.statistical_restart_penalty, branch.next_address
            )

    def _fetch_lines(self, clocks: _Clocks, start: int, end: int,
                     bpl_b0_time: float) -> None:
        """Access every I-cache line fetch touches in [start, end).

        The BPL searched these lines earlier (64B/cycle versus fetch's
        32B/cycle) and prefetched them; the exposed latency is whatever
        the accumulated lead could not cover.
        """
        if end <= start:
            return
        line_size = self.icache.line_size
        line = (start // line_size) * line_size
        while line < end:
            if self.lookahead_prefetch:
                # The BPL search of this line preceded the branch's b0 by
                # one search interval per 64 bytes of remaining stream.
                lines_ahead = max(0, (end - line) // 64)
                bpl_time = bpl_b0_time - lines_ahead * self._search_interval
                result = self.icache.access(line)
                arrival = max(
                    clocks.fetch_clock,
                    (line - start) / self._fetch_bytes_per_cycle
                    + clocks.fetch_clock,
                )
                lead = arrival - bpl_time
                # L1 hits pipeline at full fetch bandwidth; only latency
                # beyond the L1 hit can stall, and the BPL's lead hides
                # whatever it covered.
                effective = max(0, result.latency - self.timing.l1i_latency)
                exposed = max(0.0, effective - max(0.0, lead))
                hidden = effective - exposed
                if effective > 0:
                    self.stats.exposed_miss_cycles += int(exposed)
                    self.stats.hidden_miss_cycles += int(hidden)
                clocks.fetch_clock += exposed
            else:
                result = self.icache.access(line)
                if result.latency > self.timing.l1i_latency:
                    extra = result.latency - self.timing.l1i_latency
                    self.stats.exposed_miss_cycles += extra
                    clocks.fetch_clock += extra
            line += line_size

    def _apply_restart(self, clocks: _Clocks, penalty: float,
                       resync_to: Optional[int]) -> None:
        self.stats.restart_cycles += int(penalty)
        self.stats.restarts += 1
        clocks.now += penalty
        clocks.bpl_ready = clocks.now
        clocks.fetch_clock = clocks.now
        if resync_to is not None:
            clocks.fetch_point = resync_to
