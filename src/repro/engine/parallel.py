"""Parallel sweep runner: deterministic fan-out over simulation cells.

The multi-config experiments (Table 1 generations, Figure 3 ablations,
design-choice sweeps) are embarrassingly parallel: every (config,
workload, seed) cell is an independent simulation.  This module fans a
list of :class:`SweepCell` over a :class:`~concurrent.futures.
ProcessPoolExecutor` and merges the results back **in submission
order**, so a parallel sweep is byte-identical to a sequential one.

Determinism contract:

* ``_run_cell`` is the single worker body.  The sequential path
  (``workers <= 1``) calls it in-process; the parallel path ships it to
  worker processes.  Both paths therefore execute identical code.
* :class:`~repro.workloads.program.Program` inputs are deep-copied
  inside the worker before running — behaviours are stateful, and the
  parallel path's pickle round-trip already isolates each cell, so the
  sequential path must copy too or the two would diverge.
* Results are slotted by submission index, so they line up with cells
  regardless of which worker finished first — including across retries.
* Every result carries the :func:`~repro.verification.differential.
  stats_fingerprint` of its :class:`~repro.stats.metrics.RunStats`, so
  equivalence between worker counts is a string comparison.

Failure contract (the hardening layer):

* ``_run_cell`` is pure per cell, so a retry after a transient failure
  reproduces the exact result a clean first run would have produced —
  determinism survives retries by construction.
* A cell that keeps failing yields a structured :class:`CellError` in
  its result slot instead of killing the sweep; its ``fingerprint``
  property encodes the failure kind (``cell-error:<kind>``), so sweep
  equivalence checks still work over mixed result lists.
* An optional per-cell ``timeout`` bounds each attempt; a pool whose
  worker hangs or dies is torn down (hung processes terminated) and the
  surviving cells re-run.
* After a pool breakage the runner switches to *isolation rounds* — one
  fresh single-worker pool per cell — so a crashing cell is attributed
  exactly and innocent cells complete normally.

``python -m repro sweep`` is the CLI front end.
"""

from __future__ import annotations

import copy
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.configs.predictor import PredictorConfig
from repro.engine.functional import FunctionalEngine
from repro.workloads.program import Program
from repro.workloads.suite import get_workload

#: Cap on one exponential-backoff sleep (seconds).
_BACKOFF_CAP = 5.0


@dataclass
class SweepCell:
    """One independent (config, workload, seed) simulation.

    ``workload`` is either a standard-suite name (resolved per cell with
    the cell's seed) or a concrete :class:`Program` (deep-copied before
    running).  Cells must pickle: configs are plain dataclasses and
    programs carry only deterministic state, so both ship to worker
    processes unchanged.
    """

    label: str
    config: PredictorConfig
    workload: Union[str, Program]
    seed: int = 1
    branches: int = 8000
    warmup: int = 4000
    #: "functional" (RunStats) or "cycle" (CycleStats; warmup ignored —
    #: the cycle engine has no warmup phase).
    engine: str = "functional"
    #: Predictor backend ("object" or "array") — cells on either backend
    #: produce identical stats and fingerprints, so mixing backends
    #: across a sweep is legal and the equivalence check still holds.
    backend: str = "object"
    #: Attach a telemetry session to the cell's run.  Telemetry is an
    #: observer — it must not (and, by the tier-1 equivalence tests,
    #: does not) change the cell's stats or fingerprint; the session's
    #: registry export comes back in ``SweepResult.telemetry``.
    telemetry: bool = False
    #: Interval-sampler window for telemetry cells (0 disables sampling).
    telemetry_interval: int = 0
    #: Optional deterministic fault campaign
    #: (:class:`repro.resilience.FaultPlan`) riding the cell's engine;
    #: the injector's counters come back in ``SweepResult.faults``.
    #: None keeps the cell byte-identical to a fault-free build.
    fault_plan: Optional[object] = None
    #: Test-only hook: a module-level (hence picklable) callable invoked
    #: with the cell inside the worker before the run.  The hardening
    #: tests use it to crash or hang a worker on purpose; production
    #: sweeps leave it None.
    prelude: Optional[Callable] = None

    @property
    def workload_name(self) -> str:
        if isinstance(self.workload, Program):
            return self.workload.name
        return self.workload


@dataclass
class SweepResult:
    """Stats for one completed cell, in the cell's submission slot."""

    label: str
    workload: str
    seed: int
    branches: int
    warmup: int
    #: RunStats for functional cells; CycleStats for cycle cells.
    stats: object
    #: ``stats_fingerprint`` of the cell's accuracy RunStats — two
    #: sweeps agree iff these do.
    fingerprint: str
    #: Wall-clock seconds inside the worker (construction + run).
    elapsed: float
    #: Telemetry registry export (``Telemetry.to_dict()`` plus samples)
    #: for telemetry cells; None otherwise.
    telemetry: Optional[dict] = None
    #: Fault-injector counters for cells run under a fault plan.
    faults: Optional[dict] = None


@dataclass
class CellError:
    """Structured failure filling the result slot of a cell that could
    not be completed.

    Mirrors :class:`SweepResult`'s identity fields so report code can
    render mixed result lists; ``stats`` is always None and the
    ``fingerprint`` property encodes the failure kind instead of a
    stats digest.
    """

    label: str
    workload: str
    seed: int
    branches: int
    warmup: int
    #: "error" (exception in the cell body), "timeout" (no result
    #: within the per-cell timeout) or "crash" (worker process died).
    kind: str
    message: str
    #: Attempts consumed before giving up.
    attempts: int
    elapsed: float = 0.0
    stats: object = None
    telemetry: Optional[dict] = None
    faults: Optional[dict] = None

    @property
    def fingerprint(self) -> str:
        return f"cell-error:{self.kind}"


def _run_cell(cell: SweepCell) -> SweepResult:
    """Run one cell.  Module-level so it pickles to worker processes;
    the sequential path calls the same function for path parity."""
    from repro.verification.differential import stats_fingerprint

    if cell.prelude is not None:
        cell.prelude(cell)
    workload = cell.workload
    if isinstance(workload, Program):
        # Behaviours are stateful — every cell starts from a pristine
        # copy.  (The parallel path's pickle round-trip already copies;
        # copying here keeps the sequential path identical to it.)
        program = copy.deepcopy(workload)
    else:
        program = get_workload(workload, cell.seed)
    from repro.engine.array import create_predictor

    predictor = create_predictor(cell.config, cell.backend)
    session = None
    if cell.telemetry:
        from repro.obs.session import TelemetrySession

        # The cycle engine has no warmup phase, so only functional cells
        # skip their warmup outcomes (keeping telemetry reconcilable
        # with the counted-phase RunStats).
        session = TelemetrySession(
            predictor=predictor,
            interval=cell.telemetry_interval,
            skip=cell.warmup if cell.engine != "cycle" else 0,
        )
    injector = None
    if cell.fault_plan is not None:
        from repro.resilience.faults import FaultInjector

        injector = FaultInjector(predictor, cell.fault_plan)
    start = time.perf_counter()
    if cell.engine == "cycle":
        from repro.engine.cycle import CycleEngine

        engine = CycleEngine(predictor, telemetry=session, injector=injector)
        stats = engine.run_program(
            program, max_branches=cell.branches, seed=cell.seed
        )
        accuracy = stats.accuracy
    else:
        engine = FunctionalEngine(predictor, telemetry=session,
                                  injector=injector)
        stats = engine.run_program(
            program,
            max_branches=cell.branches,
            warmup_branches=cell.warmup,
            seed=cell.seed,
        )
        accuracy = stats
    elapsed = time.perf_counter() - start
    telemetry = None
    if session is not None:
        session.finish()
        telemetry = session.to_dict()
    return SweepResult(
        label=cell.label,
        workload=cell.workload_name,
        seed=cell.seed,
        branches=cell.branches,
        warmup=cell.warmup,
        stats=stats,
        fingerprint=stats_fingerprint(accuracy),
        elapsed=elapsed,
        telemetry=telemetry,
        faults=injector.component_counters() if injector is not None else None,
    )


# ----------------------------------------------------------------------
# Hardened execution
# ----------------------------------------------------------------------


def _cell_error(cell: SweepCell, kind: str, message: str,
                attempts: int) -> CellError:
    return CellError(
        label=cell.label,
        workload=cell.workload_name,
        seed=cell.seed,
        branches=cell.branches,
        warmup=cell.warmup,
        kind=kind,
        message=message,
        attempts=attempts,
    )


def _sleep_backoff(backoff: float, attempt: int) -> None:
    """Exponential backoff before re-attempting a failed cell."""
    if backoff > 0:
        time.sleep(min(backoff * (2 ** (attempt - 1)), _BACKOFF_CAP))


def _stop_pool(pool: ProcessPoolExecutor) -> None:
    """Tear down a pool that may hold hung or dead workers.

    ``shutdown(wait=True)`` would join a hung worker forever, so the
    worker processes are terminated first; the abandoned shutdown then
    completes once the management thread observes the dead workers.
    """
    for process in list(getattr(pool, "_processes", {}).values()):
        try:
            process.terminate()
        except Exception:
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass


def _run_sequential(cell: SweepCell, retries: int,
                    backoff: float) -> Union[SweepResult, CellError]:
    """In-process attempt loop with the same retry contract as the
    parallel path (timeouts and crashes cannot occur in-process)."""
    attempts = 0
    while True:
        attempts += 1
        try:
            return _run_cell(cell)
        except Exception as error:
            if attempts > retries:
                return _cell_error(
                    cell, "error", f"{type(error).__name__}: {error}", attempts
                )
            _sleep_backoff(backoff, attempts)


def _isolated_attempt(cell: SweepCell,
                      timeout: Optional[float]) -> Tuple[str, object]:
    """One attempt in a dedicated single-worker pool, so a crash or hang
    is attributed to exactly this cell.  Returns (outcome, payload):
    ("ok", SweepResult) or (kind, message)."""
    pool = ProcessPoolExecutor(max_workers=1)
    future = pool.submit(_run_cell, cell)
    try:
        result = future.result(timeout=timeout)
    except FuturesTimeout:
        _stop_pool(pool)
        return ("timeout", f"no result within {timeout}s")
    except BrokenProcessPool:
        _stop_pool(pool)
        return ("crash", "worker process died mid-cell")
    except Exception as error:
        pool.shutdown(wait=True)
        return ("error", f"{type(error).__name__}: {error}")
    pool.shutdown(wait=True)
    return ("ok", result)


def _pooled_round(
    cells: List[SweepCell],
    pending: List[int],
    results: List[object],
    attempts: List[int],
    workers: int,
    timeout: Optional[float],
    max_attempts: int,
    backoff: float,
) -> Tuple[List[int], bool]:
    """Run one shared pool over *pending* cells.

    Fills ``results`` slots for every definitive outcome; returns the
    indices still needing work and whether the pool broke (hang or
    worker death), which switches the caller to isolation rounds.
    Cells abandoned because *another* cell broke the pool are requeued
    without consuming an attempt.
    """
    requeue: List[int] = []
    broken = False
    pool = ProcessPoolExecutor(max_workers=min(workers, len(pending)))
    submitted = [(index, pool.submit(_run_cell, cells[index]))
                 for index in pending]
    for index, future in submitted:
        if broken:
            # Harvest whatever already finished cleanly; requeue the rest
            # unattributed (isolation rounds will assign blame).
            if future.done() and not future.cancelled():
                error = future.exception()
                if error is None:
                    attempts[index] += 1
                    results[index] = future.result()
                    continue
            requeue.append(index)
            continue
        try:
            results[index] = future.result(timeout=timeout)
            attempts[index] += 1
        except FuturesTimeout:
            if future.running():
                attempts[index] += 1
                message = f"no result within {timeout}s"
                if attempts[index] >= max_attempts:
                    results[index] = _cell_error(
                        cells[index], "timeout", message, attempts[index]
                    )
                else:
                    requeue.append(index)
            else:
                # Still queued behind the hung worker — not this cell's
                # fault; requeue without consuming an attempt.
                requeue.append(index)
            broken = True
            _stop_pool(pool)
        except BrokenProcessPool:
            # A worker died; the executor poisons every in-flight
            # future, so the culprit is not attributable from here.
            requeue.append(index)
            broken = True
            _stop_pool(pool)
        except Exception as error:  # raised inside the cell body
            attempts[index] += 1
            message = f"{type(error).__name__}: {error}"
            if attempts[index] >= max_attempts:
                results[index] = _cell_error(
                    cells[index], "error", message, attempts[index]
                )
            else:
                requeue.append(index)
    if not broken:
        pool.shutdown(wait=True)
    if requeue and backoff > 0:
        _sleep_backoff(backoff, 1)
    return requeue, broken


def run_cells(
    cells: Iterable[SweepCell],
    workers: int = 1,
    chunksize: int = 1,
    timeout: Optional[float] = None,
    retries: int = 1,
    backoff: float = 0.25,
) -> List[Union[SweepResult, CellError]]:
    """Run every cell; results are returned in cell order.

    ``workers <= 1`` runs in-process.  Either way the per-cell stats
    (and their fingerprints) are identical — only wall-clock changes.

    *timeout* bounds each attempt of each cell (None = unbounded);
    *retries* is how many times a failed cell is re-attempted (with
    exponential *backoff*) before its slot is filled with a
    :class:`CellError`.  ``chunksize`` is accepted for backwards
    compatibility and ignored — cells are submitted individually so a
    failure never takes neighbouring cells down with it.
    """
    del chunksize  # retained for API compatibility
    cells = list(cells)
    if workers <= 1 or len(cells) <= 1:
        return [_run_sequential(cell, retries, backoff) for cell in cells]
    workers = min(workers, len(cells))
    max_attempts = retries + 1
    results: List[object] = [None] * len(cells)
    attempts = [0] * len(cells)
    pending = list(range(len(cells)))
    isolate = False
    while pending:
        if not isolate:
            pending, broke = _pooled_round(
                cells, pending, results, attempts, workers, timeout,
                max_attempts, backoff,
            )
            isolate = broke
            continue
        # Isolation rounds: one fresh single-worker pool per cell, so
        # crashes and hangs are attributed exactly.
        index = pending.pop(0)
        attempts[index] += 1
        outcome, payload = _isolated_attempt(cells[index], timeout)
        if outcome == "ok":
            results[index] = payload
        elif attempts[index] >= max_attempts:
            results[index] = _cell_error(
                cells[index], outcome, str(payload), attempts[index]
            )
        else:
            _sleep_backoff(backoff, attempts[index])
            pending.append(index)
    return results  # type: ignore[return-value]


def make_grid(
    configs: Sequence[Tuple[str, PredictorConfig]],
    workloads: Sequence[Union[str, Program]],
    seeds: Sequence[int] = (1,),
    branches: int = 8000,
    warmup: int = 4000,
    backend: str = "object",
) -> List[SweepCell]:
    """Cross (config × workload × seed) into cells, config-major order."""
    return [
        SweepCell(
            label=label,
            config=config,
            workload=workload,
            seed=seed,
            branches=branches,
            warmup=warmup,
            backend=backend,
        )
        for label, config in configs
        for workload in workloads
        for seed in seeds
    ]
