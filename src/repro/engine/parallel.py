"""Parallel sweep runner: deterministic warm-worker fan-out over cells.

The multi-config experiments (Table 1 generations, Figure 3 ablations,
design-choice sweeps) are embarrassingly parallel: every (config,
workload, seed) cell is an independent simulation.  This module fans a
list of :class:`SweepCell` over a *persistent* pool of warm worker
processes and merges the results back **in submission order**, so a
parallel sweep is byte-identical to a sequential one.

The warm-pool architecture (the fix for the ``speedup: 0.87`` baseline,
where per-cell pickling of deep-copied Programs dominated the fan-out):

* **Serialize-once transfer.**  A :class:`PayloadRegistry` pickles each
  distinct heavy payload (Program, PredictorConfig, FaultPlan) exactly
  once in the parent, keyed by a content fingerprint.  Workers receive
  the whole blob cache once, at spawn, through the pool initializer —
  chunk messages afterwards carry only fingerprints and scalars.
* **Local per-cell copies.**  A worker materialises a pristine payload
  per cell with ``pickle.loads`` on its cached blob — the moral
  equivalent of the old per-cell ``copy.deepcopy``, but from bytes that
  crossed the pipe once.  The sequential path installs the same blob
  cache in-process and runs the identical materialisation code.
* **Chunking.**  Cells are dispatched in chunks of ``chunk_size`` to
  amortise executor dispatch and result IPC; a cell failure inside a
  chunk is caught per cell, so one bad cell never poisons chunkmates.
* **Streaming.**  :func:`stream_cells` is an incremental iterator: it
  yields each :class:`SweepResult`/:class:`CellError` row as soon as
  every earlier row is definitive — merged into submission order, so
  consumers can checkpoint partial progress (see
  :mod:`repro.engine.stream`) without giving up the byte-identical
  contract.  :func:`run_cells` is the collect-into-a-list wrapper.

Determinism contract:

* ``_run_spec`` is the single cell body.  The sequential path
  (``workers <= 1``) calls it in-process; the parallel path ships it to
  worker processes inside :func:`_run_chunk`.  Both paths execute
  identical code over identically-materialised payloads.
* Results are slotted by submission index, so they line up with cells
  regardless of which worker finished first — including across retries.
* Every result carries the :func:`~repro.verification.differential.
  stats_fingerprint` of its :class:`~repro.stats.metrics.RunStats`, so
  equivalence between worker counts is a string comparison.

Failure contract (the PR-5 hardening layer, preserved on the warm
path):

* ``_run_spec`` is pure per cell, so a retry after a transient failure
  reproduces the exact result a clean first run would have produced —
  determinism survives retries by construction.
* A cell that keeps failing yields a structured :class:`CellError` in
  its result slot instead of killing the sweep; its ``fingerprint``
  property encodes the failure kind (``cell-error:<kind>``).
* An optional per-cell ``timeout`` bounds each attempt; a chunk of *k*
  cells gets a ``k * timeout`` budget.  A pool whose worker hangs or
  dies is torn down (hung processes terminated) and the surviving
  cells re-run.
* After a pool breakage the runner switches to *isolation rounds* — one
  fresh warm single-worker pool per cell — so a crashing cell is
  attributed exactly and innocent cells complete normally.

``python -m repro sweep`` and ``python -m repro fleet`` are the CLI
front ends.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.common.errors import SimulationError
from repro.configs.predictor import PredictorConfig
from repro.engine.functional import FunctionalEngine
from repro.workloads.program import Program
from repro.workloads.suite import get_workload

#: Cap on one exponential-backoff sleep (seconds).
_BACKOFF_CAP = 5.0


@dataclass
class SweepCell:
    """One independent (config, workload, seed) simulation.

    ``workload`` is either a standard-suite name (resolved per cell with
    the cell's seed) or a concrete :class:`Program` (materialised from a
    serialize-once blob before running).  Cells must pickle: configs are
    plain dataclasses and programs carry only deterministic state.
    """

    label: str
    config: PredictorConfig
    workload: Union[str, Program]
    seed: int = 1
    branches: int = 8000
    warmup: int = 4000
    #: "functional" (RunStats) or "cycle" (CycleStats; warmup ignored —
    #: the cycle engine has no warmup phase).
    engine: str = "functional"
    #: Predictor backend ("object" or "array") — cells on either backend
    #: produce identical stats and fingerprints, so mixing backends
    #: across a sweep is legal and the equivalence check still holds.
    backend: str = "object"
    #: Engine mode ("reference" or "fast") — fast cells drive the
    #: config-specialized compiled kernels (:mod:`repro.engine.
    #: specialize`); stats and fingerprints are byte-identical across
    #: modes, so mixing modes across a sweep is legal too.
    engine_mode: str = "reference"
    #: Attach a telemetry session to the cell's run.  Telemetry is an
    #: observer — it must not (and, by the tier-1 equivalence tests,
    #: does not) change the cell's stats or fingerprint; the session's
    #: registry export comes back in ``SweepResult.telemetry``.
    telemetry: bool = False
    #: Interval-sampler window for telemetry cells (0 disables sampling).
    telemetry_interval: int = 0
    #: Optional deterministic fault campaign
    #: (:class:`repro.resilience.FaultPlan`) riding the cell's engine;
    #: the injector's counters come back in ``SweepResult.faults``.
    #: None keeps the cell byte-identical to a fault-free build.
    fault_plan: Optional[object] = None
    #: Test-only hook: a module-level (hence picklable) callable invoked
    #: with the cell's spec inside the worker before the run.  The
    #: hardening tests use it to crash or hang a worker on purpose
    #: (specs expose ``label``/``seed``/... like the cell); production
    #: sweeps leave it None.
    prelude: Optional[Callable] = None

    @property
    def workload_name(self) -> str:
        if isinstance(self.workload, Program):
            return self.workload.name
        return self.workload


@dataclass
class SweepResult:
    """Stats for one completed cell, in the cell's submission slot."""

    label: str
    workload: str
    seed: int
    branches: int
    warmup: int
    #: RunStats for functional cells; CycleStats for cycle cells.  A
    #: result restored from a checkpoint stream carries a read-only
    #: :class:`repro.engine.stream.RestoredStats` view instead.
    stats: object
    #: ``stats_fingerprint`` of the cell's accuracy RunStats — two
    #: sweeps agree iff these do.
    fingerprint: str
    #: Wall-clock seconds inside the worker (construction + run).
    elapsed: float
    #: Telemetry registry export (``Telemetry.to_dict()`` plus samples)
    #: for telemetry cells; None otherwise.
    telemetry: Optional[dict] = None
    #: Fault-injector counters for cells run under a fault plan.
    faults: Optional[dict] = None


@dataclass
class CellError:
    """Structured failure filling the result slot of a cell that could
    not be completed.

    Mirrors :class:`SweepResult`'s identity fields so report code can
    render mixed result lists; ``stats`` is always None and the
    ``fingerprint`` property encodes the failure kind instead of a
    stats digest.
    """

    label: str
    workload: str
    seed: int
    branches: int
    warmup: int
    #: "error" (exception in the cell body), "timeout" (no result
    #: within the per-cell timeout) or "crash" (worker process died).
    kind: str
    message: str
    #: Attempts consumed before giving up.
    attempts: int
    elapsed: float = 0.0
    stats: object = None
    telemetry: Optional[dict] = None
    faults: Optional[dict] = None

    @property
    def fingerprint(self) -> str:
        return f"cell-error:{self.kind}"


# ----------------------------------------------------------------------
# Serialize-once payload transfer
# ----------------------------------------------------------------------


class PayloadRegistry:
    """Content-addressed pickle cache: each distinct payload object is
    pickled exactly once, no matter how many cells reference it or how
    many workers run them.

    ``register`` memoises by object identity (strong references are
    kept, so ids stay valid) and dedups by content fingerprint — two
    equal-but-distinct Programs share one blob on the wire.
    ``pickle_calls`` counts actual ``pickle.dumps`` invocations; the
    serialize-once regression tests pin it to the number of distinct
    payload objects.
    """

    def __init__(self) -> None:
        self._fingerprints: Dict[int, str] = {}
        self._keepalive: List[object] = []
        #: fingerprint -> pickled bytes; shipped to each worker once,
        #: through the pool initializer.
        self.blobs: Dict[str, bytes] = {}
        #: ``pickle.dumps`` calls made by this registry.
        self.pickle_calls = 0

    def register(self, payload: Optional[object]) -> Optional[str]:
        """Pickle *payload* (once) and return its content fingerprint."""
        if payload is None:
            return None
        key = id(payload)
        fingerprint = self._fingerprints.get(key)
        if fingerprint is not None:
            return fingerprint
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        self.pickle_calls += 1
        fingerprint = hashlib.sha256(blob).hexdigest()
        self.blobs.setdefault(fingerprint, blob)
        self._fingerprints[key] = fingerprint
        self._keepalive.append(payload)
        return fingerprint

    @property
    def payload_bytes(self) -> int:
        return sum(len(blob) for blob in self.blobs.values())


#: Worker-process blob cache, installed once per worker by the pool
#: initializer (the sequential path installs it in-process).
_PAYLOAD_CACHE: Dict[str, bytes] = {}

#: Worker-side instrumentation, keyed to the owning pid so a forked
#: child never inherits its parent's counters as its own.
_WORKER_STATS: Dict[str, int] = {}


def _reset_worker_stats_if_new_process() -> None:
    pid = os.getpid()
    if _WORKER_STATS.get("pid") != pid:
        _WORKER_STATS.clear()
        _WORKER_STATS.update(
            pid=pid, installs=0, materializations=0,
            payload_blobs=0, payload_bytes=0, cells_run=0,
        )


def _install_payloads(blobs: Mapping[str, bytes]) -> None:
    """Pool initializer: receive the serialize-once blob cache.

    Runs exactly once per worker process — every later chunk message
    references payloads by fingerprint only.
    """
    _reset_worker_stats_if_new_process()
    _PAYLOAD_CACHE.clear()
    _PAYLOAD_CACHE.update(blobs)
    _WORKER_STATS["installs"] += 1
    _WORKER_STATS["payload_blobs"] = len(blobs)
    _WORKER_STATS["payload_bytes"] = sum(len(b) for b in blobs.values())


def _materialize(fingerprint: str) -> object:
    """A pristine local copy of a registered payload: ``pickle.loads``
    on the cached blob — per-cell isolation without per-cell IPC."""
    blob = _PAYLOAD_CACHE.get(fingerprint)
    if blob is None:
        raise SimulationError(
            f"payload {fingerprint[:12]} missing from worker cache "
            f"(pool initialised with {len(_PAYLOAD_CACHE)} blobs)"
        )
    _WORKER_STATS["materializations"] = (
        _WORKER_STATS.get("materializations", 0) + 1
    )
    return pickle.loads(blob)


@dataclass
class _CellSpec:
    """The light, chunk-shippable form of a cell: heavy payloads are
    replaced by registry fingerprints; everything else is scalars."""

    label: str
    workload_name: str
    #: Registry fingerprint of a concrete Program, or None for a
    #: standard-suite workload rebuilt per cell from (name, seed).
    workload_ref: Optional[str]
    config_ref: str
    fault_ref: Optional[str]
    seed: int
    branches: int
    warmup: int
    engine: str
    backend: str
    engine_mode: str
    telemetry: bool
    telemetry_interval: int
    prelude: Optional[Callable]


def _spec_for(cell: SweepCell, registry: PayloadRegistry) -> _CellSpec:
    workload_ref = None
    if isinstance(cell.workload, Program):
        workload_ref = registry.register(cell.workload)
    return _CellSpec(
        label=cell.label,
        workload_name=cell.workload_name,
        workload_ref=workload_ref,
        config_ref=registry.register(cell.config),
        fault_ref=registry.register(cell.fault_plan),
        seed=cell.seed,
        branches=cell.branches,
        warmup=cell.warmup,
        engine=cell.engine,
        backend=cell.backend,
        engine_mode=cell.engine_mode,
        telemetry=cell.telemetry,
        telemetry_interval=cell.telemetry_interval,
        prelude=cell.prelude,
    )


def cell_fingerprint(cell: SweepCell,
                     registry: Optional[PayloadRegistry] = None) -> str:
    """A stable content digest of a cell's identity (payloads included,
    test-only prelude excluded) — the key a checkpoint stream uses to
    prove a resumed sweep is the same sweep."""
    spec = _spec_for(cell, registry if registry is not None
                     else PayloadRegistry())
    identity = (
        spec.label, spec.workload_name, spec.workload_ref, spec.config_ref,
        spec.fault_ref, spec.seed, spec.branches, spec.warmup, spec.engine,
        spec.backend, spec.telemetry, spec.telemetry_interval,
        spec.engine_mode,
    )
    return hashlib.sha256(repr(identity).encode()).hexdigest()


# ----------------------------------------------------------------------
# The cell body
# ----------------------------------------------------------------------


def _run_spec(spec: _CellSpec) -> SweepResult:
    """Run one cell from its spec.  Module-level so it pickles to worker
    processes; the sequential path calls the same function (over the
    same in-process blob cache) for path parity."""
    from repro.verification.differential import stats_fingerprint

    if spec.prelude is not None:
        spec.prelude(spec)
    if spec.workload_ref is not None:
        # Behaviours are stateful — every cell starts from a pristine
        # copy, materialised locally from the serialize-once blob.
        program = _materialize(spec.workload_ref)
    else:
        program = get_workload(spec.workload_name, spec.seed)
    config = _materialize(spec.config_ref)
    from repro.engine.array import create_predictor

    predictor = create_predictor(config, spec.backend)
    session = None
    if spec.telemetry:
        from repro.obs.session import TelemetrySession

        # The cycle engine has no warmup phase, so only functional cells
        # skip their warmup outcomes (keeping telemetry reconcilable
        # with the counted-phase RunStats).
        session = TelemetrySession(
            predictor=predictor,
            interval=spec.telemetry_interval,
            skip=spec.warmup if spec.engine != "cycle" else 0,
        )
    injector = None
    if spec.fault_ref is not None:
        from repro.resilience.faults import FaultInjector

        injector = FaultInjector(predictor, _materialize(spec.fault_ref))
    start = time.perf_counter()
    if spec.engine == "cycle":
        from repro.engine.cycle import CycleEngine

        engine = CycleEngine(predictor, telemetry=session, injector=injector,
                             engine_mode=spec.engine_mode)
        stats = engine.run_program(
            program, max_branches=spec.branches, seed=spec.seed
        )
        accuracy = stats.accuracy
    else:
        engine = FunctionalEngine(predictor, telemetry=session,
                                  injector=injector,
                                  engine_mode=spec.engine_mode)
        stats = engine.run_program(
            program,
            max_branches=spec.branches,
            warmup_branches=spec.warmup,
            seed=spec.seed,
        )
        accuracy = stats
    elapsed = time.perf_counter() - start
    telemetry = None
    if session is not None:
        session.finish()
        telemetry = session.to_dict()
    _WORKER_STATS["cells_run"] = _WORKER_STATS.get("cells_run", 0) + 1
    return SweepResult(
        label=spec.label,
        workload=spec.workload_name,
        seed=spec.seed,
        branches=spec.branches,
        warmup=spec.warmup,
        stats=stats,
        fingerprint=stats_fingerprint(accuracy),
        elapsed=elapsed,
        telemetry=telemetry,
        faults=injector.component_counters() if injector is not None else None,
    )


def _run_chunk(tasks: List[Tuple[int, _CellSpec]]) -> Tuple[bytes, dict]:
    """Run a chunk of cells inside a warm worker.

    Failures are caught *per cell*, so one raising cell yields an
    ("error", message) outcome while its chunkmates complete normally —
    only a crash or hang takes the whole chunk down (and then isolation
    rounds re-attribute).

    Result IPC is *batched*: the whole outcome list crosses the pipe as
    one ``pickle.dumps`` blob, so the RunStats of chunkmates share one
    pickle memo (interned class descriptors, provider-name keys, the
    framing overhead) instead of paying it per cell.  The worker also
    measures what the same outcomes would have cost pickled one by one,
    so ``pool_stats`` can account the bytes the batching saved.
    Returns (outcome blob, worker instrumentation snapshot).
    """
    outcomes: List[Tuple] = []
    for index, spec in tasks:
        try:
            outcomes.append((index, "ok", _run_spec(spec)))
        except Exception as error:
            outcomes.append(
                (index, "error", f"{type(error).__name__}: {error}")
            )
    _reset_worker_stats_if_new_process()
    blob = pickle.dumps(outcomes, protocol=pickle.HIGHEST_PROTOCOL)
    unbatched = sum(
        len(pickle.dumps(outcome, protocol=pickle.HIGHEST_PROTOCOL))
        for outcome in outcomes
    )
    stats = dict(_WORKER_STATS)
    stats["chunk_result_bytes"] = len(blob)
    stats["chunk_result_bytes_unbatched"] = unbatched
    return blob, stats


def _account_result_blob(stats: dict, blob: bytes,
                         worker_stats: Mapping[str, int]) -> None:
    """Fold one chunk's result-IPC accounting into ``pool_stats``."""
    stats["result_blobs"] = stats.get("result_blobs", 0) + 1
    stats["result_bytes"] = stats.get("result_bytes", 0) + len(blob)
    unbatched = worker_stats.get("chunk_result_bytes_unbatched", len(blob))
    stats["result_bytes_unbatched"] = (
        stats.get("result_bytes_unbatched", 0) + unbatched
    )
    stats["result_bytes_saved"] = (
        stats["result_bytes_unbatched"] - stats["result_bytes"]
    )


# ----------------------------------------------------------------------
# Hardened execution
# ----------------------------------------------------------------------


def _cell_error(cell: SweepCell, kind: str, message: str,
                attempts: int) -> CellError:
    return CellError(
        label=cell.label,
        workload=cell.workload_name,
        seed=cell.seed,
        branches=cell.branches,
        warmup=cell.warmup,
        kind=kind,
        message=message,
        attempts=attempts,
    )


def _sleep_backoff(backoff: float, attempt: int) -> None:
    """Exponential backoff before re-attempting a failed cell."""
    if backoff > 0:
        time.sleep(min(backoff * (2 ** (attempt - 1)), _BACKOFF_CAP))


def _stop_pool(pool: ProcessPoolExecutor) -> None:
    """Tear down a pool that may hold hung or dead workers.

    ``shutdown(wait=True)`` would join a hung worker forever, so the
    worker processes are terminated first; the abandoned shutdown then
    completes once the management thread observes the dead workers.
    """
    for process in list(getattr(pool, "_processes", {}).values()):
        try:
            process.terminate()
        except Exception:
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass


def _run_sequential_spec(cell: SweepCell, spec: _CellSpec, retries: int,
                         backoff: float) -> Union[SweepResult, CellError]:
    """In-process attempt loop with the same retry contract as the
    parallel path (timeouts and crashes cannot occur in-process)."""
    attempts = 0
    while True:
        attempts += 1
        try:
            return _run_spec(spec)
        except Exception as error:
            if attempts > retries:
                return _cell_error(
                    cell, "error", f"{type(error).__name__}: {error}", attempts
                )
            _sleep_backoff(backoff, attempts)


def _isolated_attempt(spec: _CellSpec, blobs: Mapping[str, bytes],
                      timeout: Optional[float]) -> Tuple[str, object, dict]:
    """One attempt in a dedicated warm single-worker pool, so a crash or
    hang is attributed to exactly this cell.  Returns (outcome, payload,
    worker_stats): ("ok", SweepResult, stats) or (kind, message, {})."""
    pool = ProcessPoolExecutor(max_workers=1, initializer=_install_payloads,
                               initargs=(dict(blobs),))
    future = pool.submit(_run_chunk, [(0, spec)])
    try:
        blob, worker_stats = future.result(timeout=timeout)
        outcomes = pickle.loads(blob)
    except FuturesTimeout:
        _stop_pool(pool)
        return ("timeout", f"no result within {timeout}s", {})
    except BrokenProcessPool:
        _stop_pool(pool)
        return ("crash", "worker process died mid-cell", {})
    except Exception as error:  # infrastructure failure, not the cell
        pool.shutdown(wait=True)
        return ("error", f"{type(error).__name__}: {error}", {})
    pool.shutdown(wait=True)
    _, status, payload = outcomes[0]
    return (status, payload, worker_stats)


def _fresh_pool_stats() -> dict:
    return {
        "mode": None,
        "workers_requested": 0,
        "chunk_size": 1,
        "payload_blobs": 0,
        "payload_bytes": 0,
        "parent_pickle_calls": 0,
        "chunks_dispatched": 0,
        "result_blobs": 0,
        "result_bytes": 0,
        "result_bytes_unbatched": 0,
        "result_bytes_saved": 0,
        "rounds": 0,
        "pool_breaks": 0,
        "isolation_attempts": 0,
        "resumed_cells": 0,
        #: Latest instrumentation snapshot per worker pid.
        "workers": {},
    }


def _record_worker(stats: dict, worker_stats: dict) -> None:
    pid = worker_stats.get("pid")
    if pid is not None:
        stats["workers"][pid] = worker_stats


def _observe_result(spans, result: Union[SweepResult, CellError]) -> None:
    """Fold one definitive result into the span tracer: completed cells
    contribute their in-worker elapsed to the ``execute`` phase; failed
    cells surface as ``cell.error`` incidents."""
    if isinstance(result, SweepResult):
        spans.observe("execute", result.elapsed, label=result.label)
    else:
        spans.event("cell.error", label=result.label, kind=result.kind,
                    attempts=result.attempts)


def stream_cells(
    cells: Iterable[SweepCell],
    workers: int = 1,
    chunk_size: int = 1,
    timeout: Optional[float] = None,
    retries: int = 1,
    backoff: float = 0.25,
    completed: Optional[Mapping[int, Union[SweepResult, CellError]]] = None,
    pool_stats: Optional[dict] = None,
    spans=None,
) -> Iterator[Union[SweepResult, CellError]]:
    """Incrementally run every cell, yielding results in cell order.

    Rows are yielded as soon as every earlier row is definitive — a
    consumer writing each row to disk therefore checkpoints a strict,
    never-reordered prefix of the final result list.  ``completed``
    pre-fills result slots (by submission index) from a previous
    partial run; those cells are not re-run (see
    :func:`repro.engine.stream.restore_completed`).

    ``workers <= 1`` runs in-process over the same serialize-once blob
    cache and cell body as the worker path — per-cell stats and
    fingerprints are identical either way; only wall-clock changes.
    *timeout* bounds each attempt of each cell (a chunk of *k* cells
    gets ``k * timeout``); *retries* is how many times a failed cell is
    re-attempted (with exponential *backoff*) before its slot is filled
    with a :class:`CellError`.  ``pool_stats``, when given a dict, is
    populated with transfer/instrumentation counters (serialize-once
    accounting, per-worker install counts, chunk dispatch totals).

    *spans*, when given a :class:`~repro.obs.spans.SpanTracer`, records
    the submission lifecycle: ``serialize``/``transfer``/``execute``/
    ``merge`` phase spans (worker execute time harvested from each
    result's in-worker ``elapsed``), plus ``cell.retry``/
    ``cell.timeout``/``cell.error``/``pool.break``/``isolation.round``
    incident events, and leaves per-phase latency histograms in
    ``pool_stats["phase_latency"]``.  Spans only observe — results and
    fingerprints are byte-identical with tracing on or off — and the
    default off path pays one truthiness check per phase.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    cells = list(cells)
    stats = pool_stats if pool_stats is not None else {}
    stats.update(_fresh_pool_stats())
    registry = PayloadRegistry()
    if spans:
        with spans.span("serialize", cells=len(cells)):
            specs = [_spec_for(cell, registry) for cell in cells]
    else:
        specs = [_spec_for(cell, registry) for cell in cells]
    results: List[object] = [None] * len(cells)
    for index, result in (completed or {}).items():
        if not 0 <= index < len(cells):
            raise ValueError(
                f"completed index {index} outside grid of {len(cells)} cells"
            )
        results[index] = result
    stats.update(
        workers_requested=workers,
        chunk_size=chunk_size,
        payload_blobs=len(registry.blobs),
        payload_bytes=registry.payload_bytes,
        parent_pickle_calls=registry.pickle_calls,
        resumed_cells=sum(1 for r in results if r is not None),
    )
    pending = [i for i in range(len(cells)) if results[i] is None]
    max_attempts = retries + 1
    emitted = 0

    def _emit_ready():
        nonlocal emitted
        while emitted < len(cells) and results[emitted] is not None:
            yield results[emitted]
            emitted += 1

    if workers <= 1 or len(pending) <= 1:
        stats["mode"] = "sequential"
        if spans:
            with spans.span("transfer",
                            payload_bytes=registry.payload_bytes):
                _install_payloads(registry.blobs)
        else:
            _install_payloads(registry.blobs)
        for index in range(len(cells)):
            if results[index] is None:
                results[index] = _run_sequential_spec(
                    cells[index], specs[index], retries, backoff
                )
                if spans:
                    _observe_result(spans, results[index])
            yield from _emit_ready()
        if spans:
            stats["phase_latency"] = spans.phase_latency()
        return

    stats["mode"] = "warm-pool"
    attempts = [0] * len(cells)
    first_chunks = (len(pending) + chunk_size - 1) // chunk_size
    if spans:
        with spans.span("transfer", payload_bytes=registry.payload_bytes,
                        workers=max(1, min(workers, first_chunks))):
            pool = ProcessPoolExecutor(
                max_workers=max(1, min(workers, first_chunks)),
                initializer=_install_payloads,
                initargs=(registry.blobs,),
            )
    else:
        pool = ProcessPoolExecutor(
            max_workers=max(1, min(workers, first_chunks)),
            initializer=_install_payloads,
            initargs=(registry.blobs,),
        )
    pool_live = True
    finished = False
    try:
        isolate = False
        while pending:
            if isolate:
                # Isolation rounds: one fresh warm single-worker pool
                # per cell, so crashes and hangs are attributed exactly.
                index = pending.pop(0)
                attempts[index] += 1
                stats["isolation_attempts"] += 1
                if spans:
                    spans.event("isolation.round", label=cells[index].label,
                                attempt=attempts[index])
                outcome, payload, worker_stats = _isolated_attempt(
                    specs[index], registry.blobs, timeout
                )
                if outcome == "ok":
                    results[index] = payload
                    _record_worker(stats, worker_stats)
                    if spans:
                        _observe_result(spans, payload)
                elif attempts[index] >= max_attempts:
                    results[index] = _cell_error(
                        cells[index], outcome, str(payload), attempts[index]
                    )
                    if spans:
                        _observe_result(spans, results[index])
                else:
                    if spans:
                        spans.event("cell.retry", label=cells[index].label,
                                    kind=outcome, attempt=attempts[index])
                    _sleep_backoff(backoff, attempts[index])
                    pending.append(index)
                yield from _emit_ready()
                continue

            # One chunked round over the persistent warm pool.
            stats["rounds"] += 1
            chunks = [pending[i:i + chunk_size]
                      for i in range(0, len(pending), chunk_size)]
            stats["chunks_dispatched"] += len(chunks)
            requeue: List[int] = []
            broken = False
            submitted = [
                (chunk, pool.submit(_run_chunk,
                                    [(i, specs[i]) for i in chunk]))
                for chunk in chunks
            ]
            for chunk, future in submitted:
                if broken:
                    # Harvest whatever already finished cleanly; requeue
                    # the rest unattributed (isolation rounds will
                    # assign blame without consuming an attempt here).
                    if (future.done() and not future.cancelled()
                            and future.exception() is None):
                        blob, worker_stats = future.result()
                        outcomes = pickle.loads(blob)
                        _account_result_blob(stats, blob, worker_stats)
                        _record_worker(stats, worker_stats)
                        for index, status, payload in outcomes:
                            attempts[index] += 1
                            if status == "ok":
                                results[index] = payload
                                if spans:
                                    _observe_result(spans, payload)
                            elif attempts[index] >= max_attempts:
                                results[index] = _cell_error(
                                    cells[index], "error", payload,
                                    attempts[index],
                                )
                                if spans:
                                    _observe_result(spans, results[index])
                            else:
                                if spans:
                                    spans.event(
                                        "cell.retry",
                                        label=cells[index].label,
                                        kind="error",
                                        attempt=attempts[index],
                                    )
                                requeue.append(index)
                    else:
                        requeue.extend(chunk)
                    continue
                budget = (timeout * len(chunk)
                          if timeout is not None else None)
                try:
                    blob, worker_stats = future.result(timeout=budget)
                except FuturesTimeout:
                    if future.running() and len(chunk) == 1:
                        # Exact attribution: this single-cell chunk hung.
                        index = chunk[0]
                        attempts[index] += 1
                        message = f"no result within {timeout}s"
                        if spans:
                            spans.event("cell.timeout",
                                        label=cells[index].label,
                                        attempt=attempts[index])
                        if attempts[index] >= max_attempts:
                            results[index] = _cell_error(
                                cells[index], "timeout", message,
                                attempts[index],
                            )
                            if spans:
                                _observe_result(spans, results[index])
                        else:
                            requeue.append(index)
                    else:
                        # Multi-cell chunk (culprit unknown) or still
                        # queued behind the hung worker — requeue
                        # without consuming an attempt; isolation
                        # rounds attribute exactly.
                        requeue.extend(chunk)
                    broken = True
                    _stop_pool(pool)
                    pool_live = False
                except BrokenProcessPool:
                    # A worker died; the executor poisons every
                    # in-flight future, so the culprit is not
                    # attributable from here.
                    requeue.extend(chunk)
                    broken = True
                    _stop_pool(pool)
                    pool_live = False
                else:
                    if spans:
                        with spans.span("merge", cells=len(chunk)):
                            outcomes = pickle.loads(blob)
                    else:
                        outcomes = pickle.loads(blob)
                    _account_result_blob(stats, blob, worker_stats)
                    _record_worker(stats, worker_stats)
                    for index, status, payload in outcomes:
                        attempts[index] += 1
                        if status == "ok":
                            results[index] = payload
                            if spans:
                                _observe_result(spans, payload)
                        elif attempts[index] >= max_attempts:
                            results[index] = _cell_error(
                                cells[index], "error", payload,
                                attempts[index],
                            )
                            if spans:
                                _observe_result(spans, results[index])
                        else:
                            if spans:
                                spans.event("cell.retry",
                                            label=cells[index].label,
                                            kind="error",
                                            attempt=attempts[index])
                            requeue.append(index)
                    yield from _emit_ready()
            if broken:
                isolate = True
                stats["pool_breaks"] += 1
                if spans:
                    spans.event("pool.break",
                                pending=len(requeue))
            elif requeue:
                _sleep_backoff(backoff, 1)
            pending = sorted(requeue)
            yield from _emit_ready()
        finished = True
    finally:
        if spans:
            stats["phase_latency"] = spans.phase_latency()
        if pool_live:
            if finished:
                pool.shutdown(wait=True)
            else:
                # Abandoned stream (consumer stopped early): terminate
                # the workers instead of letting queued chunks run on.
                _stop_pool(pool)


def run_cells(
    cells: Iterable[SweepCell],
    workers: int = 1,
    chunksize: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    backoff: float = 0.25,
    chunk_size: Optional[int] = None,
    completed: Optional[Mapping[int, Union[SweepResult, CellError]]] = None,
    pool_stats: Optional[dict] = None,
    spans=None,
) -> List[Union[SweepResult, CellError]]:
    """Run every cell; results are returned in cell order.

    The collect-into-a-list wrapper over :func:`stream_cells` — see
    there for the determinism, chunking and failure contracts.
    ``chunk_size`` (``chunksize`` is the historical alias) sets how many
    cells ride one dispatch to a warm worker; 1 keeps the exact
    cell-at-a-time semantics of the pre-warm-pool runner.
    """
    size = chunk_size if chunk_size is not None else (chunksize or 1)
    return list(
        stream_cells(
            cells,
            workers=workers,
            chunk_size=size,
            timeout=timeout,
            retries=retries,
            backoff=backoff,
            completed=completed,
            pool_stats=pool_stats,
            spans=spans,
        )
    )


def make_grid(
    configs: Sequence[Tuple[str, PredictorConfig]],
    workloads: Sequence[Union[str, Program]],
    seeds: Sequence[int] = (1,),
    branches: int = 8000,
    warmup: int = 4000,
    backend: str = "object",
    engine_mode: str = "reference",
) -> List[SweepCell]:
    """Cross (config × workload × seed) into cells, config-major order."""
    return [
        SweepCell(
            label=label,
            config=config,
            workload=workload,
            seed=seed,
            branches=branches,
            warmup=warmup,
            backend=backend,
            engine_mode=engine_mode,
        )
        for label, config in configs
        for workload in workloads
        for seed in seeds
    ]
