"""Parallel sweep runner: deterministic fan-out over simulation cells.

The multi-config experiments (Table 1 generations, Figure 3 ablations,
design-choice sweeps) are embarrassingly parallel: every (config,
workload, seed) cell is an independent simulation.  This module fans a
list of :class:`SweepCell` over a :class:`~concurrent.futures.
ProcessPoolExecutor` and merges the results back **in submission
order**, so a parallel sweep is byte-identical to a sequential one.

Determinism contract:

* ``_run_cell`` is the single worker body.  The sequential path
  (``workers <= 1``) calls it in-process; the parallel path ships it to
  worker processes.  Both paths therefore execute identical code.
* :class:`~repro.workloads.program.Program` inputs are deep-copied
  inside the worker before running — behaviours are stateful, and the
  parallel path's pickle round-trip already isolates each cell, so the
  sequential path must copy too or the two would diverge.
* ``ProcessPoolExecutor.map`` preserves input order, so results line up
  with cells regardless of which worker finished first.
* Every result carries the :func:`~repro.verification.differential.
  stats_fingerprint` of its :class:`~repro.stats.metrics.RunStats`, so
  equivalence between worker counts is a string comparison.

``python -m repro sweep`` is the CLI front end.
"""

from __future__ import annotations

import copy
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.configs.predictor import PredictorConfig
from repro.core.predictor import LookaheadBranchPredictor
from repro.engine.functional import FunctionalEngine
from repro.workloads.program import Program
from repro.workloads.suite import get_workload


@dataclass
class SweepCell:
    """One independent (config, workload, seed) simulation.

    ``workload`` is either a standard-suite name (resolved per cell with
    the cell's seed) or a concrete :class:`Program` (deep-copied before
    running).  Cells must pickle: configs are plain dataclasses and
    programs carry only deterministic state, so both ship to worker
    processes unchanged.
    """

    label: str
    config: PredictorConfig
    workload: Union[str, Program]
    seed: int = 1
    branches: int = 8000
    warmup: int = 4000
    #: "functional" (RunStats) or "cycle" (CycleStats; warmup ignored —
    #: the cycle engine has no warmup phase).
    engine: str = "functional"
    #: Attach a telemetry session to the cell's run.  Telemetry is an
    #: observer — it must not (and, by the tier-1 equivalence tests,
    #: does not) change the cell's stats or fingerprint; the session's
    #: registry export comes back in ``SweepResult.telemetry``.
    telemetry: bool = False
    #: Interval-sampler window for telemetry cells (0 disables sampling).
    telemetry_interval: int = 0

    @property
    def workload_name(self) -> str:
        if isinstance(self.workload, Program):
            return self.workload.name
        return self.workload


@dataclass
class SweepResult:
    """Stats for one completed cell, in the cell's submission slot."""

    label: str
    workload: str
    seed: int
    branches: int
    warmup: int
    #: RunStats for functional cells; CycleStats for cycle cells.
    stats: object
    #: ``stats_fingerprint`` of the cell's accuracy RunStats — two
    #: sweeps agree iff these do.
    fingerprint: str
    #: Wall-clock seconds inside the worker (construction + run).
    elapsed: float
    #: Telemetry registry export (``Telemetry.to_dict()`` plus samples)
    #: for telemetry cells; None otherwise.
    telemetry: Optional[dict] = None


def _run_cell(cell: SweepCell) -> SweepResult:
    """Run one cell.  Module-level so it pickles to worker processes;
    the sequential path calls the same function for path parity."""
    from repro.verification.differential import stats_fingerprint

    workload = cell.workload
    if isinstance(workload, Program):
        # Behaviours are stateful — every cell starts from a pristine
        # copy.  (The parallel path's pickle round-trip already copies;
        # copying here keeps the sequential path identical to it.)
        program = copy.deepcopy(workload)
    else:
        program = get_workload(workload, cell.seed)
    predictor = LookaheadBranchPredictor(cell.config)
    session = None
    if cell.telemetry:
        from repro.obs.session import TelemetrySession

        # The cycle engine has no warmup phase, so only functional cells
        # skip their warmup outcomes (keeping telemetry reconcilable
        # with the counted-phase RunStats).
        session = TelemetrySession(
            predictor=predictor,
            interval=cell.telemetry_interval,
            skip=cell.warmup if cell.engine != "cycle" else 0,
        )
    start = time.perf_counter()
    if cell.engine == "cycle":
        from repro.engine.cycle import CycleEngine

        engine = CycleEngine(predictor, telemetry=session)
        stats = engine.run_program(
            program, max_branches=cell.branches, seed=cell.seed
        )
        accuracy = stats.accuracy
    else:
        engine = FunctionalEngine(predictor, telemetry=session)
        stats = engine.run_program(
            program,
            max_branches=cell.branches,
            warmup_branches=cell.warmup,
            seed=cell.seed,
        )
        accuracy = stats
    elapsed = time.perf_counter() - start
    telemetry = None
    if session is not None:
        session.finish()
        telemetry = session.to_dict()
    return SweepResult(
        label=cell.label,
        workload=cell.workload_name,
        seed=cell.seed,
        branches=cell.branches,
        warmup=cell.warmup,
        stats=stats,
        fingerprint=stats_fingerprint(accuracy),
        elapsed=elapsed,
        telemetry=telemetry,
    )


def run_cells(
    cells: Iterable[SweepCell], workers: int = 1, chunksize: int = 1
) -> List[SweepResult]:
    """Run every cell; results are returned in cell order.

    ``workers <= 1`` runs in-process.  Either way the per-cell stats
    (and their fingerprints) are identical — only wall-clock changes.
    """
    cells = list(cells)
    if workers <= 1 or len(cells) <= 1:
        return [_run_cell(cell) for cell in cells]
    with ProcessPoolExecutor(max_workers=min(workers, len(cells))) as pool:
        # map() yields results in input order, not completion order.
        return list(pool.map(_run_cell, cells, chunksize=chunksize))


def make_grid(
    configs: Sequence[Tuple[str, PredictorConfig]],
    workloads: Sequence[Union[str, Program]],
    seeds: Sequence[int] = (1,),
    branches: int = 8000,
    warmup: int = 4000,
) -> List[SweepCell]:
    """Cross (config × workload × seed) into cells, config-major order."""
    return [
        SweepCell(
            label=label,
            config=config,
            workload=workload,
            seed=seed,
            branches=branches,
            warmup=warmup,
        )
        for label, config in configs
        for workload in workloads
        for seed in seeds
    ]
