"""Config-specialized compiled prediction kernels (the ``fast`` engine mode).

INTERNALS §12's Amdahl accounting showed that after the array backend
made table probes cheap, ~80% of a simulated branch was still the
prediction *pipeline*: ``predict_and_resolve`` → ``_predict_dynamic`` →
figure-8/9 selection → resolution → completion updates, ~170 Python
calls per branch, identical across backends.  This module collapses
that pyramid the way :func:`collections.namedtuple` builds classes —
textual code generation plus :func:`compile` — producing, per *config
shape*, a flat kernel in which:

* dead component paths are dropped at generation time (no BTB2 section
  when ``config.btb2 is None``, no SKOOT section when
  ``config.skoot_enabled`` is false, no overlay probes when the
  SBHT/SPHT are disabled);
* geometry and latency constants (line size, walk cap, completion
  delay, GPQ capacity, drain limits, BTB2 visibility) are baked in as
  integer literals;
* every hot structure attribute and bound method is hoisted to a local
  once per *drive call* instead of being re-resolved per branch; and
* the per-branch allocations of the reference path (``SearchTrace``,
  ``DirectionDecision``, ``TargetDecision``, ``PredictionOutcome``)
  are elided entirely on the bare no-observer path, with the
  ``RunStats`` fold inlined over local accumulators.

The reference object path in :mod:`repro.core.predictor` stays the
semantics definition; the generated code is a transcription of it, and
the cross-backend/cross-mode differential battery
(:mod:`repro.verification.differential`) proves byte-identical branch
streams, stats and state round-trips.  See ``docs/INTERNALS.md`` §14
for the specialization contract — what may be specialized away and
what must stay observable.

Observability contract of the generated kernels:

* **Bare kernels** (no observer, telemetry, injector or profile
  attached) accumulate the predictor counters (``predictions``,
  ``dynamic_predictions``, ``surprise_branches``, ``restarts``) and
  all ``RunStats`` integers in locals, flushed in a ``finally`` so
  exceptions and early exits leave exactly the state the reference
  path would have left.
* **Observed kernels** construct the same ``PredictionOutcome``
  objects as the reference path and keep every predictor counter an
  attribute update, because telemetry samplers harvest
  ``component_counters()`` mid-run through the observer seam.
* ``_staging_drain_countdown`` is carried in a local in both flavours
  (no observer reads it) and written back to the predictor after every
  branch (observed) or in ``finally`` (bare), so checkpoints taken at
  any engine boundary are byte-identical.
"""

from __future__ import annotations

import linecache
import textwrap
import threading
from string import Template
from typing import Dict, Optional, Tuple

from repro.configs.predictor import PredictorConfig
from repro.core.cpred import (
    POWER_ALL,
    POWER_CTB,
    POWER_PERCEPTRON,
    POWER_PHT,
    CpredEntry,
    CpredLookup,
)
from repro.core.crs import CrsPrediction, _Stack as _CrsStack
from repro.core.gpq import PredictionRecord
from repro.core.predictor import (
    LookaheadBranchPredictor,
    PredictionOutcome,
    SearchTrace,
    _Stream,
)
from repro.core.providers import DirectionProvider, TargetProvider
from repro.core.tage import LONG, SHORT, TageLookupSnapshot
from repro.isa.instructions import static_guess_taken, static_target_known
from repro.stats.metrics import MispredictClass
from repro.workloads.multi import ContextSwitch

__all__ = [
    "ENGINE_MODES",
    "SpecializedKernels",
    "clear_kernel_cache",
    "config_shape",
    "generate_kernel_source",
    "kernels_for",
    "kernels_for_config",
]

#: The engine modes every engine/CLI surface accepts.  ``reference``
#: drives the object path in :mod:`repro.core.predictor`; ``fast``
#: drives the specialized kernels generated here.
ENGINE_MODES = ("reference", "fast")


# ---------------------------------------------------------------------------
# Shape keying
# ---------------------------------------------------------------------------

def config_shape(config: PredictorConfig) -> Tuple:
    """The specialization key: everything the generated source depends on.

    Two configs with the same shape share one compiled kernel module
    (the cache below); geometry that lives *inside* the structures
    (table rows/ways, mask constants) is already bound at structure
    construction and needs no key here.
    """
    return (
        config.btb2 is not None,
        bool(config.skoot_enabled),
        bool(config.speculative.enabled),
        config.btb1.line_size,
        config.search_walk_cap,
        config.completion_delay,
        config.gpq_capacity,
        config.write_drain_per_step,
        config.btb2_visibility_lines,
        config.skoot_max,
    )


class SpecializedKernels:
    """The compiled drive loops for one config shape."""

    __slots__ = (
        "shape",
        "source",
        "counted_bare",
        "counted_observed",
        "warmup_bare",
        "warmup_observed",
        "events_bare",
        "events_observed",
        "predict_flat",
    )

    def __init__(self, shape: Tuple, source: str, namespace: Dict):
        self.shape = shape
        self.source = source
        self.counted_bare = namespace["counted_bare"]
        self.counted_observed = namespace["counted_observed"]
        self.warmup_bare = namespace["warmup_bare"]
        self.warmup_observed = namespace["warmup_observed"]
        self.events_bare = namespace["events_bare"]
        self.events_observed = namespace["events_observed"]
        self.predict_flat = namespace["predict_flat"]


_CACHE: Dict[Tuple, SpecializedKernels] = {}
_CACHE_LOCK = threading.Lock()


def clear_kernel_cache() -> None:
    """Drop every compiled kernel (tests of the generation path)."""
    with _CACHE_LOCK:
        _CACHE.clear()


def kernels_for_config(config: PredictorConfig) -> SpecializedKernels:
    """The (cached) compiled kernels for *config*'s shape."""
    shape = config_shape(config)
    kernels = _CACHE.get(shape)
    if kernels is None:
        with _CACHE_LOCK:
            kernels = _CACHE.get(shape)
            if kernels is None:
                kernels = _compile_shape(shape)
                _CACHE[shape] = kernels
    return kernels


def kernels_for(predictor: LookaheadBranchPredictor) -> SpecializedKernels:
    """The compiled kernels for a live predictor (any backend: the
    generated code binds instance attributes, so the array twins run
    through the very same kernel)."""
    return kernels_for_config(predictor.config)


# ---------------------------------------------------------------------------
# Template rendering
# ---------------------------------------------------------------------------
# The kernel body is written once as a marker-annotated template:
# ``#IF NAME`` / ``#ELSE`` / ``#ENDIF`` lines gate config- and
# flavour-conditional regions, ``$TOKEN`` placeholders take baked
# integer literals and flavour-specific statements.  The renderer is
# deliberately dumb — no expression language — so the template reads
# as the plain Python it becomes.


def _render(template: str, flags: Dict[str, bool], subs: Dict[str, str]) -> str:
    out = []
    # Stack of (emitting, this_if_taken); emitting folds in the parents.
    stack = [(True, True)]
    for line in template.splitlines():
        stripped = line.strip()
        if stripped.startswith("#IF "):
            name = stripped[4:].strip()
            taken = bool(flags.get(name, False))
            stack.append((stack[-1][0] and taken, taken))
            continue
        if stripped == "#ELSE":
            _, taken = stack.pop()
            stack.append((stack[-1][0] and not taken, not taken))
            continue
        if stripped == "#ENDIF":
            stack.pop()
            continue
        if stack[-1][0]:
            out.append(line)
    if len(stack) != 1:
        raise AssertionError("unbalanced #IF/#ENDIF in kernel template")
    text = "\n".join(out) + "\n"
    return Template(text).substitute(subs)


# --- the shared per-branch core (indent 0 == loop-body level) --------------
# A transcription of LookaheadBranchPredictor.predict_and_resolve with
# _walk_to, _predict_dynamic (figure 8 + figure 9 inlined),
# _predict_surprise, _after_resolution, the GPQ push/completions and
# _apply_update flattened in.  Every side effect runs in the reference
# order; the differential battery holds this line by line.

_CORE = """\
#IF EVENTS
if isinstance(branch, ContextSwitch):
    P.context_switch(branch.entry_point, branch.context, branch.thread)
    continue
#ENDIF
$INC_PRED
thread = branch.thread
if thread != cur_thread:
    state = tstates.get(thread)
    if state is None:
        state = mk_state(thread)
    gpv = state.gpv
    crs_pstk = crs_pstacks.get(thread)
    if crs_pstk is None:
        crs_pstk = crs_pstacks[thread] = CrsStack()
    cur_thread = thread
stream_s = state.stream
address = branch.address
context = branch.context
sequence = branch.sequence
t_lines = 0
t_skoot = 0
t_empty = 0
t_btb2 = 0
t_bad = 0
t_badtaken = 0
t_overshoot = False
t_capped = False
t_cpred = False
#IF BTB2
if drain_cd is None and btb2_staging:
    btb2_drain(limit=$DRAIN2)
#ENDIF
hit = None
while True:
#IF SKOOT
    pending = stream_s.pending_skip
    if pending:
        s_start = stream_s.start_address
        first_line = s_start - s_start % $LINE + pending * $LINE
        if address < first_line:
            t_overshoot = True
            stream_s.pending_skip = 0
            break
        if state.search_address < first_line:
            t_skoot += pending
            state.search_address = first_line
        stream_s.pending_skip = 0
#ENDIF
    if address < state.search_address:
        break
    sa = state.search_address
    gap = address // $LINE - sa // $LINE
    if gap > $CAP:
        skipped = gap - $CAP
        t_capped = True
        t_lines += skipped
        t_empty += skipped
        stream_s.searches_done += skipped
#IF BTB2
        btb2_reset()
#ENDIF
        state.search_address = address - address % $LINE - $CAPBYTES
    target_line = address - address % $LINE
    while True:
        sa = state.search_address
        line_base = sa - sa % $LINE
        min_offset = sa - line_base
        hits = search_line(line_base, context, min_offset)
        t_lines += 1
        stream_s.searches_done += 1
        if hits:
            if line_base == target_line:
                for candidate in hits:
                    hit_address = candidate.address
                    if hit_address < address:
                        c_entry = candidate.entry
                        would_redirect = c_entry.is_unconditional or c_entry.bht.taken
                        btb1_remove(candidate)
                        t_bad += 1
                        if would_redirect:
                            t_badtaken += 1
                    elif hit_address == address:
                        hit = candidate
                        break
                    else:
                        break
            else:
                for candidate in hits:
                    c_entry = candidate.entry
                    would_redirect = c_entry.is_unconditional or c_entry.bht.taken
                    btb1_remove(candidate)
                    t_bad += 1
                    if would_redirect:
                        t_badtaken += 1
        else:
            t_empty += 1
#IF BTB2
        if btb2_note(line_base, context, bool(hits)):
            t_btb2 += 1
            drain_cd = $VIS
        if drain_cd is not None:
            if drain_cd <= 0:
                btb2_drain()
                drain_cd = None
            else:
                drain_cd = drain_cd - 1
#ENDIF
        if line_base == target_line:
            break
        state.search_address = line_base + $LINE
#IF BTB2
    if drain_cd is not None:
        btb2_drain()
        drain_cd = None
#ENDIF
    break
#IF ALLOC
t_stream = stream_s.searches_done
#ENDIF
if hit is not None:
    $INC_DYN
    entry = hit.entry
    gpv_snapshot = gpv._value
    cpred_lookup = stream_s.cpred_lookup
    # --- figure 8 (direction) -----------------------------------------
    if entry.is_unconditional:
        d_taken = True
        d_provider = D_UNCOND
        d_alt_taken = None
        d_alt_provider = None
        d_tage = None
        d_perc = None
        d_pht_powered = True
        d_perc_powered = True
    else:
        d_provider = None
        d_taken = False
        d_alt_provider = None
        d_alt_taken = None
        d_tage = None
        d_perc = None
        d_pht_powered = True
        d_perc_powered = True
        if entry.bidirectional:
            if cpred_on and cpred_lookup.hit:
                u_pmask = cpred_lookup.power_mask
                d_perc_powered = u_pmask & $PPERC != 0
                if not d_perc_powered:
                    cpred.power_gated_lookups += 1
                d_pht_powered = u_pmask & $PPHT != 0
                if not d_pht_powered:
                    cpred.power_gated_lookups += 1
            if d_perc_powered:
                d_perc = perc_lookup(hit.address, gpv)
                if d_perc.hit and d_perc.useful:
                    d_provider = D_PERC
                    d_taken = d_perc.taken
            else:
                cpred.power_gate_misses += 1
            if d_pht_powered:
                tage_lookup = tage_lookup_fn(hit.address, gpv)
                d_tage = tage_from_lookup(tage_lookup)
#IF SPEC
                for pht_hit in (tage_lookup.long_hit, tage_lookup.short_hit):
                    if pht_hit is None:
                        continue
                    spht_entry = spht_entries.get(
                        ("spht", pht_hit.table, pht_hit.row, pht_hit.tag)
                    )
                    if spht_entry is not None:
                        spht.overrides += 1
                        override = spht_entry.taken
                        if d_provider is None:
                            d_provider = D_SPHT
                            d_taken = override
                        elif d_alt_provider is None:
                            d_alt_provider = D_SPHT
                            d_alt_taken = override
                        break
#ENDIF
                tage_provider = tage_lookup.provider
                if tage_provider is not None:
                    provider_id = D_PHTL if tage_provider == LONG_T else D_PHTS
                    if d_provider is None:
                        d_provider = provider_id
                        d_taken = tage_lookup.provider_taken
                    elif d_alt_provider is None:
                        d_alt_provider = provider_id
                        d_alt_taken = tage_lookup.provider_taken
                    if tage_provider == LONG_T and tage_lookup.short_hit is not None:
                        if d_alt_provider is None:
                            d_alt_provider = D_PHTS
                            d_alt_taken = tage_lookup.short_hit.taken
            else:
                cpred.power_gate_misses += 1
        bht_taken = entry.bht.taken
#IF SPEC
        sbht_entry = sbht_entries.get(
            ("sbht", hit.row, hit.way, entry.tag, entry.offset)
        )
        if sbht_entry is not None:
            sbht.overrides += 1
            sbht_override = sbht_entry.taken
            if d_provider is None:
                d_provider = D_SBHT
                d_taken = sbht_override
            elif d_alt_provider is None:
                d_alt_provider = D_SBHT
                d_alt_taken = sbht_override
#ENDIF
        if d_provider is None:
            d_provider = D_BHT
            d_taken = bht_taken
        elif d_alt_provider is None:
            d_alt_provider = D_BHT
            d_alt_taken = bht_taken
#IF SPEC
        # _install_weak_overlays
        if d_provider is D_BHT and entry.bht.weak:
            sbht_install(
                ("sbht", hit.row, hit.way, entry.tag, entry.offset),
                d_taken,
                sequence,
            )
        if (
            (d_provider is D_PHTS or d_provider is D_PHTL)
            and d_tage is not None
            and d_tage.provider_weak
            and d_tage.provider is not None
        ):
            spht_install(
                ("spht", d_tage.provider, d_tage.provider_row, d_tage.provider_tag),
                d_taken,
                sequence,
            )
#ENDIF
    # --- figure 9 (target) --------------------------------------------
    predicted_target = None
    target_provider = T_BTB1
    ctb_lookup = None
    crs_prediction = None
    ctb_powered = True
    if d_taken:
        fig9_done = False
        if entry.multi_target:
            u_roff = entry.return_offset
            if (
                crs_on
                and u_roff is not None
                and not entry.crs_blacklisted
                and crs_pstk.valid
            ):
                u_target = crs_pstk.nsia + u_roff
                crs_pstk.valid = False
                crs.predictions_used += 1
                crs_prediction = new_crspred(CrsPredT)
                crs_prediction.used = True
                crs_prediction.target = u_target
                predicted_target = u_target
                target_provider = T_CRS
                fig9_done = True
            else:
                crs_prediction = new_crspred(CrsPredT)
                crs_prediction.used = False
                crs_prediction.target = None
                if cpred_on and cpred_lookup.hit:
                    ctb_powered = cpred_lookup.power_mask & $PCTB != 0
                    if not ctb_powered:
                        cpred.power_gated_lookups += 1
                if ctb_powered:
                    ctb_lookup = ctb_lookup_fn(hit.address, context, gpv_snapshot)
                    if ctb_lookup.hit:
                        predicted_target = ctb_lookup.target
                        target_provider = T_CTB
                        fig9_done = True
                else:
                    cpred.power_gate_misses += 1
        if not fig9_done:
            predicted_target = entry.target
            target_provider = T_BTB1
    # --- the prediction record ----------------------------------------
    record = new_record(Record)
    record.sequence = sequence
    record.address = address
    record.context = context
    record.thread = thread
    record.kind = branch.kind
    record.length = branch.instruction.length
    record.dynamic = True
    record.predicted_taken = d_taken
    record.predicted_target = predicted_target
    record.direction_provider = d_provider
    record.target_provider = target_provider
    record.alternate_taken = d_alt_taken
    record.alternate_provider = d_alt_provider
    record.gpv_snapshot = gpv_snapshot
    record.btb_row = hit.row
    record.btb_way = hit.way
    record.btb_tag = entry.tag
    record.btb_offset = entry.offset
    record.bidirectional_at_prediction = entry.bidirectional
    record.multi_target_at_prediction = entry.multi_target
    record.marked_return_at_prediction = entry.return_offset is not None
    record.blacklisted_at_prediction = entry.crs_blacklisted
    record.tage = d_tage
    record.perceptron = d_perc
    record.ctb = ctb_lookup
    record.crs = crs_prediction
    record.cpred = cpred_lookup
    record.pht_powered = d_pht_powered
    record.perceptron_powered = d_perc_powered
    record.ctb_powered = ctb_powered
    # --- stream bookkeeping: power needs and SKOOT training -----------
    if entry.bidirectional and not entry.is_unconditional:
        stream_s.needed_power_mask |= $PPMASK
    if entry.multi_target:
        stream_s.needed_power_mask |= $PCTB
    if not stream_s.first_branch_trained:
        stream_s.first_branch_trained = True
#IF SKOOT
        opener_t = stream_s.opener
        if opener_t is not None:
            s_start = stream_s.start_address
            if address >= s_start:
                opener_t.train_skoot(address // $LINE - s_start // $LINE, $SKOOTMAX)
#ENDIF
    if d_taken:
        if crs_on:
            u_d = predicted_target - address
            if (u_d if u_d >= 0 else -u_d) >= crs_dist:
                crs_pstk.nsia = branch.next_sequential
                crs_pstk.valid = True
#IF SKOOT
        e_skoot = entry.skoot
        if e_skoot is not None and e_skoot > 0:
            redirect = predicted_target - predicted_target % $LINE + e_skoot * $LINE
        else:
            redirect = predicted_target
#ELSE
        redirect = predicted_target
#ENDIF
        if cpred_lookup.hit:
            if cpred_lookup.way == hit.way and cpred_lookup.redirect_address == redirect:
                cpred.correct += 1
                t_cpred = True
            else:
                cpred.wrong += 1
        if cpred_on:
            u_v = stream_s.start_address >> 1
            u_row = 0
            while u_v:
                u_row ^= u_v & cpred_rowmask
                u_v >>= cpred_rowbits
            u_row %= cpred_rowcount
            u_v = (stream_s.start_address >> 4) ^ (context * 0x1F7B)
            u_tag = 0
            while u_v:
                u_tag ^= u_v & cpred_tagmask
                u_v >>= cpred_tagbits
            u_new = new_cpred_entry(CpredEntryT)
            u_new.tag = u_tag
            u_new.searches_to_taken = stream_s.searches_done
            u_new.way = hit.way
            u_new.redirect_address = redirect
            u_new.power_mask = stream_s.needed_power_mask
            u_data = cpred_data[u_row]
            if u_data is None:
                u_data = cpred_data[u_row] = [None] * cpred_ways
            u_found = -1
            u_way = 0
            for u_e in u_data:
                if u_e is not None and u_e.tag == u_tag:
                    u_found = u_way
                    break
                u_way += 1
            if u_found < 0:
                u_way = 0
                for u_e in u_data:
                    if u_e is None:
                        u_found = u_way
                        break
                    u_way += 1
            u_pol = cpred_pols[u_row]
            if u_pol is None:
                u_pol = cpred_pols[u_row] = cpred_polf(cpred_ways)
            if u_found < 0:
                u_found = u_pol.victim()
            u_data[u_found] = u_new
            u_pol.touch(u_found)
            cpred.trains += 1
    record.crs_stack_snapshot = (crs_pstk.valid, crs_pstk.nsia)
    predicted_taken_l = d_taken
    direction_provider_l = d_provider
else:
    $INC_SUR
    instruction = branch.instruction
    guessed_taken = static_guess(instruction)
    predicted_target = None
    target_provider = T_NONE
    if guessed_taken and static_known(instruction):
        predicted_target = instruction.static_target
        target_provider = T_STATREL
#IF BTB2
    if guessed_taken or branch.taken:
        btb2_surprise(sequence, address, context)
#ENDIF
    if guessed_taken or branch.taken:
        if not stream_s.first_branch_trained:
            stream_s.first_branch_trained = True
#IF SKOOT
            opener_t = stream_s.opener
            if opener_t is not None:
                s_start = stream_s.start_address
                if address >= s_start:
                    opener_t.train_skoot(address // $LINE - s_start // $LINE, $SKOOTMAX)
#ENDIF
    record = new_record(Record)
    record.sequence = sequence
    record.address = address
    record.context = context
    record.thread = thread
    record.kind = branch.kind
    record.length = instruction.length
    record.dynamic = False
    record.predicted_taken = guessed_taken
    record.predicted_target = predicted_target
    record.direction_provider = D_STATIC
    record.target_provider = target_provider
    record.alternate_taken = None
    record.alternate_provider = None
    record.gpv_snapshot = gpv._value
    record.btb_row = 0
    record.btb_way = 0
    record.btb_tag = 0
    record.btb_offset = 0
    record.bidirectional_at_prediction = False
    record.multi_target_at_prediction = False
    record.marked_return_at_prediction = False
    record.blacklisted_at_prediction = False
    record.tage = None
    record.perceptron = None
    record.ctb = None
    record.crs = None
    record.cpred = None
    record.crs_stack_snapshot = (crs_pstk.valid, crs_pstk.nsia)
    record.pht_powered = True
    record.perceptron_powered = True
    record.ctb_powered = True
    predicted_taken_l = guessed_taken
    direction_provider_l = D_STATIC
# --- resolution ------------------------------------------------------
actual_taken = branch.taken
actual_target = branch.target
record.actual_taken = actual_taken
record.actual_target = actual_target
# --- _after_resolution ----------------------------------------------
correct_path = predicted_taken_l == actual_taken and (
    not actual_taken or predicted_target == actual_target
)
#IF SPEC
if hit is not None and predicted_taken_l != actual_taken:
    install_corrected(record, hit, branch)
#ENDIF
if actual_taken:
    u_gc = gpv._hash_cache
    u_h = u_gc.get(address)
    if u_h is None:
        if len(u_gc) >= 65536:
            u_gc.clear()
        u_h = u_gc[address] = gpv._hash_fold(address >> 1)
    gpv._value = ((gpv._value << gpv.bits_per_branch) | u_h) & gpv._width_mask
if hit is not None and correct_path:
    if actual_taken:
        state.search_address = actual_target
        begin_stream(P, state, actual_target, context, entry)
    else:
        state.search_address = address + 2
else:
    $INC_RST
    crs_pstk.valid, crs_pstk.nsia = record.crs_stack_snapshot
#IF BTB2
    btb2_reset()
#ENDIF
    next_address = branch.next_address
    state.search_address = next_address
    if hit is not None and actual_taken:
        opener_n = entry
    else:
        opener_n = None
    begin_stream(P, state, next_address, context, opener_n)
# --- GPQ push + due completions (with _apply_update inlined) ---------
if len(gpq_items) >= $GPQCAP:
    forced = gpq_popleft()
    gpq.forced_completions += 1
else:
    forced = None
gpq_append(record)
if forced is not None:
    #APPLY forced
completed = sequence - $CDELAY
while gpq_items and gpq_items[0].sequence <= completed:
    due = gpq_popleft()
    #APPLY due
$SYNC_DRAIN
#IF FOLD
# --- RunStats.record inlined over local accumulators -----------------
s_branches += 1
if hit is not None:
    s_dyn += 1
else:
    s_sur += 1
if actual_taken:
    s_taken += 1
if hit is not None:
    if predicted_taken_l != actual_taken:
        klass = K_DIRW
    elif actual_taken and predicted_target != actual_target:
        klass = K_TGTW
    else:
        klass = K_NONE
else:
    if not predicted_taken_l:
        klass = K_SURT if actual_taken else K_NONE
    elif not actual_taken:
        klass = K_SGW
    elif predicted_target is None:
        klass = K_SGTI
    elif predicted_target != actual_target:
        klass = K_SGW
    else:
        klass = K_SGTR
classes[klass] += 1
if klass is K_DIRW:
    s_mis += 1
    s_dirw += 1
elif klass is K_TGTW:
    s_mis += 1
    s_tgtw += 1
elif klass is K_SURT or klass is K_SGW:
    s_mis += 1
pstats = dprov.get(direction_provider_l)
if pstats is None:
    pstats = dprov[direction_provider_l] = [0, 0]
pstats[0] += 1
if predicted_taken_l == actual_taken:
    pstats[1] += 1
if hit is not None and predicted_taken_l:
    s_ptd += 1
    if actual_taken:
        tstats = tprov.get(target_provider)
        if tstats is None:
            tstats = tprov[target_provider] = [0, 0]
        tstats[0] += 1
        if predicted_target == actual_target:
            tstats[1] += 1
s_lines += t_lines
s_empty += t_empty
s_skoot += t_skoot
s_btb2 += t_btb2
s_bad += t_bad
s_badtaken += t_badtaken
if t_overshoot:
    s_overshoot += 1
if t_cpred:
    s_cpredacc += 1
#ENDIF
#IF ALLOC
trace = new_trace(Trace)
trace.lines_searched = t_lines
trace.lines_skipped_by_skoot = t_skoot
trace.empty_searches = t_empty
trace.btb2_triggers = t_btb2
trace.bad_predictions_removed = t_bad
trace.bad_taken_restarts = t_badtaken
trace.skoot_overshoot = t_overshoot
trace.walk_capped = t_capped
trace.cpred_accelerated = t_cpred
trace.stream_searches = t_stream
outcome = new_outcome(Outcome)
outcome.record = record
outcome.trace = trace
#ENDIF
"""


# --- _apply_update inlined (spliced at the two completion sites) ----------
# A transcription of _apply_update -> _update_dynamic / _update_targets
# (with _refind_entry and _tage_alternate folded in); surprise
# completions stay a bound-method call — they are rare and allocate.
# ``$REC`` is the record variable at the splice site (forced / due).

_APPLY = """\
#IF SPEC
if sbht_entries:
    u_stale = [
        u_k
        for u_k, u_e in sbht_entries.items()
        if u_e.installer_sequence <= $REC.sequence
    ]
    if u_stale:
        for u_k in u_stale:
            del sbht_entries[u_k]
            sbht_order.remove(u_k)
        sbht.removals += len(u_stale)
if spht_entries:
    u_stale = [
        u_k
        for u_k, u_e in spht_entries.items()
        if u_e.installer_sequence <= $REC.sequence
    ]
    if u_stale:
        for u_k in u_stale:
            del spht_entries[u_k]
            spht_order.remove(u_k)
        spht.removals += len(u_stale)
#ENDIF
if $REC.dynamic:
    u_entry = btb1_entry_at($REC.btb_row, $REC.btb_way)
    if u_entry is not None and (
        u_entry.tag != $REC.btb_tag or u_entry.offset != $REC.btb_offset
    ):
        u_entry = None
    u_ataken = $REC.actual_taken
    u_taken = bool(u_ataken)
    u_dirw = $REC.predicted_taken != u_ataken
    if u_entry is not None:
        u_entry.bht.update(u_taken)
        if u_dirw and not u_entry.is_unconditional:
            u_entry.bidirectional = True
    u_tage = $REC.tage
    if u_tage is not None:
        # _tage_alternate: the short table's direction when the long
        # table provided and a short observation exists, else the
        # recorded alternate (None when there was no provider).
        if u_tage.provider is None:
            u_alt = None
        else:
            u_alt = $REC.alternate_taken
            if u_tage.provider == LONG_T:
                for u_tbl, u_tk, u_wk in u_tage.weak_observations:
                    if u_tbl == SHORT_T:
                        u_alt = u_tk
                        break
        tage_update(u_tage, u_taken, u_alt)
    if u_dirw and not (u_entry is not None and u_entry.is_unconditional):
        u_dp = $REC.direction_provider
        if u_dp is D_PHTS:
            u_mis = SHORT_T
        elif u_dp is D_PHTL:
            u_mis = LONG_T
        else:
            u_mis = None
        tage_install_mis($REC.address, $REC.gpv_snapshot, u_taken, u_mis)
        u_perc = $REC.perceptron
        if u_perc is None or not u_perc.hit:
            perc_install($REC.address)
    u_perc = $REC.perceptron
    if u_perc is not None and u_perc.hit:
        if $REC.direction_provider is D_PERC:
            u_cmp = $REC.alternate_taken
        else:
            u_cmp = $REC.predicted_taken
        perc_update(u_perc, u_taken, u_cmp)
    u_atgt = $REC.actual_target
    if u_taken and u_atgt is not None:
        u_tgtw = $REC.predicted_taken and $REC.predicted_target != u_atgt
        if u_tgtw:
            u_tp = $REC.target_provider
            if u_tp is T_BTB1:
                if u_entry is not None:
                    u_entry.target = u_atgt
                    u_entry.multi_target = True
                ctb_install($REC.address, $REC.context, $REC.gpv_snapshot, u_atgt)
            elif u_tp is T_CTB and $REC.ctb is not None:
                ctb_correct($REC.ctb, u_atgt)
            elif u_tp is T_CRS:
                crs.blacklists += 1
                if u_entry is not None:
                    u_entry.crs_blacklisted = True
        u_match = None
        if crs_on:
            u_stk = crs_dstacks.get($REC.thread)
            if u_stk is None:
                u_stk = crs_dstacks[$REC.thread] = CrsStack()
            if u_stk.valid:
                u_delta = u_atgt - u_stk.nsia
                if u_delta in crs_offsets:
                    u_match = u_delta
            if u_match is not None:
                crs.detections += 1
                u_stk.valid = False
            else:
                u_d2 = u_atgt - $REC.address
                if (u_d2 if u_d2 >= 0 else -u_d2) >= crs_dist:
                    u_stk.nsia = $REC.address + $REC.length
                    u_stk.valid = True
        if u_entry is not None:
            if u_match is not None and u_entry.return_offset is None:
                u_entry.return_offset = u_match
            if u_tgtw and u_entry.crs_blacklisted:
                if crs_amnesty(u_match is not None):
                    u_entry.crs_blacklisted = False
else:
    upd_sur($REC)
if wq_items:
    drained = 0
    while drained < $DRAIN:
        command = wq_try_pop()
        if command is None:
            break
        result = btb1_install(command.address, command.context, command.entry)
#IF BTB2
        if result.installed and result.victim is not None:
            btb2_evict(result.victim)
#ENDIF
        drained += 1
"""


def _splice_apply(core_text: str) -> str:
    """Replace ``#APPLY <name>`` marker lines with the inlined
    completion-update template, indented to the marker and with $REC
    bound to the site's record variable."""
    out = []
    for line in core_text.splitlines():
        stripped = line.strip()
        if stripped.startswith("#APPLY "):
            name = stripped[7:].strip()
            indent = line[: len(line) - len(line.lstrip())]
            body = _APPLY.replace("$REC", name)
            out.append(textwrap.indent(body, indent).rstrip("\n"))
        else:
            out.append(line)
    return "\n".join(out) + "\n"


_HOISTS = """\
tstates = P._threads
mk_state = P._thread_state
btb1 = P.btb1
search_line = btb1.search_line
btb1_remove = btb1.remove
btb1_install = btb1.install
btb1_entry_at = btb1.entry_at
tage_update = P.tage.update
tage_install_mis = P.tage.install_on_mispredict
perc_install = P.perceptron.install
perc_update = P.perceptron.update
ctb_install = P.ctb.install
ctb_correct = P.ctb.correct_target
#IF BTB2
btb2 = P.btb2
btb2_staging = btb2.staging
btb2_drain = btb2.drain_staging
btb2_note = btb2.note_search_outcome
btb2_reset = btb2.reset_empty_counter
btb2_surprise = btb2.note_surprise_branch
btb2_evict = btb2.handle_btb1_eviction
#ENDIF
tage_lookup_fn = P.tage.lookup
tage_from_lookup = TageLookupSnapshot.from_lookup
perc_lookup = P.perceptron.lookup
#IF SPEC
sbht = P.sbht
spht = P.spht
sbht_entries = sbht._entries
spht_entries = spht._entries
sbht_order = sbht._insertion_order
spht_order = spht._insertion_order
sbht_install = sbht.install
spht_install = spht.install
sbht_retire = sbht.retire
spht_retire = spht.retire
install_corrected = P._install_corrected_overlays
#ENDIF
ctb_lookup_fn = P.ctb.lookup
crs = P.crs
crs_on = crs.enabled
crs_dist = crs.config.distance_threshold
crs_offsets = crs.config.return_offsets
crs_pstacks = crs._predict_stacks
crs_dstacks = crs._detect_stacks
crs_amnesty = crs.consider_amnesty
CrsStack = _CrsStack
CrsPredT = _CrsPrediction
new_crspred = _new_crspred
CpredLookupT = _CpredLookup
new_cpred_lookup = _new_cpred_lookup
CpredEntryT = _CpredEntry
new_cpred_entry = _new_cpred_entry
cpred = P.cpred
cpred_on = cpred.enabled
cpred_table = cpred._table
cpred_data = cpred_table._data
cpred_pols = cpred_table._policies
cpred_ways = cpred_table.ways
cpred_polf = cpred_table._policy_factory
cpred_rowbits = cpred._row_bits
cpred_rowmask = cpred._row_fold_mask
cpred_rowcount = cpred._row_count
cpred_tagbits = cpred._tag_bits
cpred_tagmask = cpred._tag_fold_mask
gpq = P.gpq
gpq_items = gpq._items
gpq_popleft = gpq_items.popleft
gpq_append = gpq_items.append
wq = P.write_queue
wq_items = wq._items
wq_try_pop = wq.try_pop
upd_dyn = P._update_dynamic
upd_sur = P._update_surprise
begin_stream = _begin_stream
static_guess = _static_guess_taken
static_known = _static_target_known
Record = PredictionRecord
new_record = _new_record
Trace = SearchTrace
new_trace = _new_trace
Outcome = PredictionOutcome
new_outcome = _new_outcome
D_UNCOND = _D_UNCOND
D_PERC = _D_PERC
D_SPHT = _D_SPHT
D_PHTL = _D_PHTL
D_PHTS = _D_PHTS
D_SBHT = _D_SBHT
D_BHT = _D_BHT
D_STATIC = _D_STATIC
T_BTB1 = _T_BTB1
T_CRS = _T_CRS
T_CTB = _T_CTB
T_NONE = _T_NONE
T_STATREL = _T_STATREL
K_NONE = _K_NONE
K_DIRW = _K_DIRW
K_TGTW = _K_TGTW
K_SURT = _K_SURT
K_SGTR = _K_SGTR
K_SGTI = _K_SGTI
K_SGW = _K_SGW
LONG_T = _LONG
SHORT_T = _SHORT
drain_cd = P._staging_drain_countdown
cur_thread = None
state = None
gpv = None
crs_pstk = None
"""


_STATS_LOCALS = """\
stats_obj = stats
classes = stats_obj.classes
dprov = stats_obj.direction_providers
tprov = stats_obj.target_providers
s_branches = 0
s_dyn = 0
s_sur = 0
s_taken = 0
s_mis = 0
s_dirw = 0
s_tgtw = 0
s_ptd = 0
s_lines = 0
s_empty = 0
s_skoot = 0
s_overshoot = 0
s_btb2 = 0
s_bad = 0
s_badtaken = 0
s_cpredacc = 0
"""


_PREDICTOR_FLUSH = """\
P.predictions += n_pred
P.dynamic_predictions += n_dyn
P.surprise_branches += n_sur
P.restarts += n_rst
P._staging_drain_countdown = drain_cd
"""


_STATS_FLUSH = """\
stats_obj.branches += s_branches
stats_obj.dynamic_predictions += s_dyn
stats_obj.surprise_branches += s_sur
stats_obj.taken_branches += s_taken
stats_obj.mispredicted_branches += s_mis
stats_obj.direction_wrong += s_dirw
stats_obj.target_wrong += s_tgtw
stats_obj.predicted_taken_dynamic += s_ptd
stats_obj.lines_searched += s_lines
stats_obj.empty_searches += s_empty
stats_obj.lines_skipped_by_skoot += s_skoot
stats_obj.skoot_overshoots += s_overshoot
stats_obj.btb2_triggers += s_btb2
stats_obj.bad_predictions_removed += s_bad
stats_obj.bad_taken_restarts += s_badtaken
stats_obj.cpred_accelerated_streams += s_cpredacc
"""


_BEGIN_STREAM = """\
def _begin_stream(P, state, start, context, opener):
    pending_skip = 0
#IF SKOOT
    if opener is not None:
        skoot_v = opener.skoot
        if skoot_v is not None:
            pending_skip = skoot_v
#ENDIF
    s = _new_stream(_Stream)
    s.start_address = start
    s.context = context
    s.opener = opener
    s.pending_skip = pending_skip
    s.first_branch_trained = False
    s.searches_done = 0
    s.needed_power_mask = 0
    cpred = P.cpred
    if not cpred.enabled:
        look = _new_cpred_lookup(_CpredLookup)
        look.hit = False
        look.row = 0
        look.tag = 0
        look.searches_to_taken = 0
        look.way = 0
        look.redirect_address = 0
        look.power_mask = $PALL
    else:
        cpred.lookups += 1
        value = start >> 1
        row = 0
        row_bits = cpred._row_bits
        fold_mask = cpred._row_fold_mask
        while value:
            row ^= value & fold_mask
            value >>= row_bits
        row %= cpred._row_count
        value = (start >> 4) ^ (context * 0x1F7B)
        tag = 0
        tag_bits = cpred._tag_bits
        fold_mask = cpred._tag_fold_mask
        while value:
            tag ^= value & fold_mask
            value >>= tag_bits
        table = cpred._table
        data = table._data[row]
        if data is None:
            data = table._data[row] = [None] * table.ways
        found = None
        way = 0
        for entry in data:
            if entry is not None and entry.tag == tag:
                found = entry
                break
            way += 1
        look = _new_cpred_lookup(_CpredLookup)
        look.row = row
        look.tag = tag
        if found is None:
            look.hit = False
            look.searches_to_taken = 0
            look.way = 0
            look.redirect_address = 0
            look.power_mask = $PALL
        else:
            pol = table._policies[row]
            if pol is None:
                pol = table._policies[row] = table._policy_factory(table.ways)
            pol.touch(way)
            cpred.hits += 1
            look.hit = True
            look.searches_to_taken = found.searches_to_taken
            look.way = found.way
            look.redirect_address = found.redirect_address
            look.power_mask = found.power_mask
    s.cpred_lookup = look
    state.stream = s
"""


_BARE_SUBS = {
    "INC_PRED": "n_pred += 1",
    "INC_DYN": "n_dyn += 1",
    "INC_SUR": "n_sur += 1",
    "INC_RST": "n_rst += 1",
    "SYNC_DRAIN": "pass",
}

_OBSERVED_SUBS = {
    "INC_PRED": "P.predictions += 1",
    "INC_DYN": "P.dynamic_predictions += 1",
    "INC_SUR": "P.surprise_branches += 1",
    "INC_RST": "P.restarts += 1",
    "SYNC_DRAIN": "P._staging_drain_countdown = drain_cd",
}


def _indent(text: str, spaces: int) -> str:
    return textwrap.indent(text, " " * spaces)


def generate_kernel_source(shape: Tuple) -> str:
    """The full generated module text for one config shape (pure
    function of the shape — tests introspect it)."""
    (
        has_btb2,
        skoot_enabled,
        spec_enabled,
        line_size,
        walk_cap,
        completion_delay,
        gpq_capacity,
        write_drain,
        visibility_lines,
        skoot_max,
    ) = shape
    shape_flags = {
        "BTB2": has_btb2,
        "SKOOT": skoot_enabled,
        "SPEC": spec_enabled,
    }
    subs_base = {
        "LINE": str(line_size),
        "CAP": str(walk_cap),
        "CAPBYTES": str(walk_cap * line_size),
        "CDELAY": str(completion_delay),
        "GPQCAP": str(gpq_capacity),
        "DRAIN": str(write_drain),
        "DRAIN2": str(2 * write_drain),
        "VIS": str(visibility_lines),
        "SKOOTMAX": str(skoot_max),
        "PPMASK": str(POWER_PHT | POWER_PERCEPTRON),
        "PPERC": str(POWER_PERCEPTRON),
        "PPHT": str(POWER_PHT),
        "PCTB": str(POWER_CTB),
    }

    def core(extra_flags: Dict[str, bool], subs: Dict[str, str]) -> str:
        flags = dict(shape_flags)
        flags.update(extra_flags)
        merged = dict(subs_base)
        merged.update(subs)
        return _render(_splice_apply(_CORE), flags, merged)

    hoists = _render(_HOISTS, shape_flags, {})
    begin_stream = _render(
        _BEGIN_STREAM, shape_flags, {"PALL": str(POWER_ALL)}
    )

    parts = [
        f'"""Specialized prediction kernels for shape {shape!r}.\n'
        "\n"
        "Generated by repro.engine.specialize; do not edit.  The\n"
        "reference semantics live in repro.core.predictor.\n"
        '"""\n',
        begin_stream,
    ]

    bare_counters = "n_pred = 0\nn_dyn = 0\nn_sur = 0\nn_rst = 0\n"

    # -- counted_bare ----------------------------------------------------
    parts.append(
        "def counted_bare(P, stream, stats):\n"
        + _indent(hoists, 4)
        + _indent(bare_counters, 4)
        + _indent(_STATS_LOCALS, 4)
        + "    try:\n"
        + "        for branch in stream:\n"
        + _indent(core({"FOLD": True}, _BARE_SUBS), 12)
        + "    finally:\n"
        + _indent(_PREDICTOR_FLUSH, 8)
        + _indent(_STATS_FLUSH, 8)
        + "    return s_branches\n"
    )

    # -- counted_observed ------------------------------------------------
    parts.append(
        "def counted_observed(P, stream, stats, observer, extra):\n"
        + _indent(hoists, 4)
        + "    stats_record = stats.record\n"
        + "    count = 0\n"
        + "    try:\n"
        + "        for branch in stream:\n"
        + _indent(core({"ALLOC": True}, _OBSERVED_SUBS), 12)
        + "            if observer is not None:\n"
        + "                observer(outcome)\n"
        + "            stats_record(outcome)\n"
        + "            if extra is not None:\n"
        + "                extra(outcome)\n"
        + "            count += 1\n"
        + "    finally:\n"
        + "        P._staging_drain_countdown = drain_cd\n"
        + "    return count\n"
    )

    # -- warmup_bare -----------------------------------------------------
    parts.append(
        "def warmup_bare(P, stream, warmup_branches):\n"
        + _indent(hoists, 4)
        + _indent(bare_counters, 4)
        + "    consumed = 0\n"
        + "    try:\n"
        + "        for branch in stream:\n"
        + _indent(core({}, _BARE_SUBS), 12)
        + "            consumed += 1\n"
        + "            if consumed == warmup_branches:\n"
        + "                break\n"
        + "    finally:\n"
        + _indent(_PREDICTOR_FLUSH, 8)
        + "    return consumed\n"
    )

    # -- warmup_observed -------------------------------------------------
    parts.append(
        "def warmup_observed(P, stream, warmup_branches, observer):\n"
        + _indent(hoists, 4)
        + "    consumed = 0\n"
        + "    try:\n"
        + "        for branch in stream:\n"
        + _indent(core({"ALLOC": True}, _OBSERVED_SUBS), 12)
        + "            observer(outcome)\n"
        + "            consumed += 1\n"
        + "            if consumed == warmup_branches:\n"
        + "                break\n"
        + "    finally:\n"
        + "        P._staging_drain_countdown = drain_cd\n"
        + "    return consumed\n"
    )

    # -- events_bare -----------------------------------------------------
    parts.append(
        "def events_bare(P, stream, stats):\n"
        + _indent(hoists, 4)
        + _indent(bare_counters, 4)
        + _indent(_STATS_LOCALS, 4)
        + "    try:\n"
        + "        for branch in stream:\n"
        + _indent(core({"FOLD": True, "EVENTS": True}, _BARE_SUBS), 12)
        + "    finally:\n"
        + _indent(_PREDICTOR_FLUSH, 8)
        + _indent(_STATS_FLUSH, 8)
        + "    return s_branches\n"
    )

    # -- events_observed -------------------------------------------------
    parts.append(
        "def events_observed(P, stream, stats, observer, extra):\n"
        + _indent(hoists, 4)
        + "    stats_record = stats.record\n"
        + "    count = 0\n"
        + "    try:\n"
        + "        for branch in stream:\n"
        + _indent(core({"ALLOC": True, "EVENTS": True}, _OBSERVED_SUBS), 12)
        + "            if observer is not None:\n"
        + "                observer(outcome)\n"
        + "            stats_record(outcome)\n"
        + "            if extra is not None:\n"
        + "                extra(outcome)\n"
        + "            count += 1\n"
        + "    finally:\n"
        + "        P._staging_drain_countdown = drain_cd\n"
        + "    return count\n"
    )

    # -- predict_flat ----------------------------------------------------
    parts.append(
        "def predict_flat(P, branch):\n"
        + _indent(hoists, 4)
        + _indent(core({"ALLOC": True}, _OBSERVED_SUBS), 4)
        + "    return outcome\n"
    )

    return "\n".join(parts)


def _compile_shape(shape: Tuple) -> SpecializedKernels:
    source = generate_kernel_source(shape)
    filename = f"<repro-specialized-{'-'.join(str(s) for s in shape)}>"
    namespace = {
        "_Stream": _Stream,
        "_new_stream": _Stream.__new__,
        "PredictionRecord": PredictionRecord,
        "_new_record": PredictionRecord.__new__,
        "SearchTrace": SearchTrace,
        "_new_trace": SearchTrace.__new__,
        "PredictionOutcome": PredictionOutcome,
        "_new_outcome": PredictionOutcome.__new__,
        "TageLookupSnapshot": TageLookupSnapshot,
        "ContextSwitch": ContextSwitch,
        "_static_guess_taken": static_guess_taken,
        "_static_target_known": static_target_known,
        "_D_UNCOND": DirectionProvider.UNCONDITIONAL,
        "_D_PERC": DirectionProvider.PERCEPTRON,
        "_D_SPHT": DirectionProvider.SPHT,
        "_D_PHTL": DirectionProvider.PHT_LONG,
        "_D_PHTS": DirectionProvider.PHT_SHORT,
        "_D_SBHT": DirectionProvider.SBHT,
        "_D_BHT": DirectionProvider.BHT,
        "_D_STATIC": DirectionProvider.STATIC,
        "_T_BTB1": TargetProvider.BTB1,
        "_T_CRS": TargetProvider.CRS,
        "_T_CTB": TargetProvider.CTB,
        "_T_NONE": TargetProvider.NONE,
        "_T_STATREL": TargetProvider.STATIC_RELATIVE,
        "_K_NONE": MispredictClass.NONE,
        "_K_DIRW": MispredictClass.DIRECTION_WRONG,
        "_K_TGTW": MispredictClass.TARGET_WRONG,
        "_K_SURT": MispredictClass.SURPRISE_TAKEN,
        "_K_SGTR": MispredictClass.SURPRISE_GUESSED_TAKEN_RELATIVE,
        "_K_SGTI": MispredictClass.SURPRISE_GUESSED_TAKEN_INDIRECT,
        "_K_SGW": MispredictClass.SURPRISE_GUESS_WRONG,
        "_LONG": LONG,
        "_SHORT": SHORT,
        "_CrsStack": _CrsStack,
        "_CrsPrediction": CrsPrediction,
        "_new_crspred": CrsPrediction.__new__,
        "_CpredLookup": CpredLookup,
        "_new_cpred_lookup": CpredLookup.__new__,
        "_CpredEntry": CpredEntry,
        "_new_cpred_entry": CpredEntry.__new__,
    }
    code = compile(source, filename, "exec")
    exec(code, namespace)
    # Register the source so tracebacks through generated code show
    # real lines (the namedtuple trick, one better).
    linecache.cache[filename] = (
        len(source),
        None,
        source.splitlines(keepends=True),
        filename,
    )
    return SpecializedKernels(shape, source, namespace)


def effective_engine_mode(engine_mode: str, predictor) -> str:
    """The mode a run will actually use: baselines and other non-z15
    predictor protocols have no specialized kernel and silently fall
    back to the reference path."""
    if engine_mode not in ENGINE_MODES:
        raise ValueError(
            f"unknown engine mode {engine_mode!r}; expected one of {ENGINE_MODES}"
        )
    if engine_mode == "fast" and isinstance(predictor, LookaheadBranchPredictor):
        return "fast"
    return "reference"
