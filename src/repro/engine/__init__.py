"""Simulation engines: functional (accuracy), cycle-level (timing), the
array-backed prediction backend, and the deterministic warm-pool sweep
runner (with JSONL checkpoint streams and fleet-scale grids).  The
shared per-branch consume sequence they all drive lives in
:mod:`repro.engine.kernel`."""

from repro.engine.array import (
    BACKENDS,
    ArrayLookaheadBranchPredictor,
    create_predictor,
    predictor_class,
)
from repro.engine.cycle import CycleEngine, CycleStats
from repro.engine.fleet import build_fleet_grid, run_fleet
from repro.engine.functional import FunctionalEngine
from repro.engine.parallel import (
    CellError,
    PayloadRegistry,
    SweepCell,
    SweepResult,
    cell_fingerprint,
    make_grid,
    run_cells,
    stream_cells,
)
from repro.engine.specialize import (
    ENGINE_MODES,
    SpecializedKernels,
    clear_kernel_cache,
    config_shape,
    effective_engine_mode,
    generate_kernel_source,
    kernels_for,
    kernels_for_config,
)
from repro.engine.stream import (
    RestoredStats,
    SweepStreamWriter,
    load_stream,
    restore_completed,
    result_to_row,
    row_to_result,
)

__all__ = [
    "ArrayLookaheadBranchPredictor",
    "BACKENDS",
    "create_predictor",
    "predictor_class",
    "CycleEngine",
    "CycleStats",
    "FunctionalEngine",
    "CellError",
    "PayloadRegistry",
    "SweepCell",
    "SweepResult",
    "cell_fingerprint",
    "make_grid",
    "run_cells",
    "stream_cells",
    "RestoredStats",
    "SweepStreamWriter",
    "load_stream",
    "restore_completed",
    "result_to_row",
    "row_to_result",
    "build_fleet_grid",
    "run_fleet",
    "ENGINE_MODES",
    "SpecializedKernels",
    "clear_kernel_cache",
    "config_shape",
    "effective_engine_mode",
    "generate_kernel_source",
    "kernels_for",
    "kernels_for_config",
]
