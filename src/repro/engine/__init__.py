"""Simulation engines: functional (accuracy), cycle-level (timing), and
the deterministic parallel sweep runner."""

from repro.engine.cycle import CycleEngine, CycleStats
from repro.engine.functional import FunctionalEngine
from repro.engine.parallel import (
    CellError,
    SweepCell,
    SweepResult,
    make_grid,
    run_cells,
)

__all__ = [
    "CycleEngine",
    "CycleStats",
    "FunctionalEngine",
    "CellError",
    "SweepCell",
    "SweepResult",
    "make_grid",
    "run_cells",
]
