"""Simulation engines: functional (accuracy), cycle-level (timing), the
array-backed prediction backend, and the deterministic parallel sweep
runner.  The shared per-branch consume sequence they all drive lives in
:mod:`repro.engine.kernel`."""

from repro.engine.array import (
    BACKENDS,
    ArrayLookaheadBranchPredictor,
    create_predictor,
    predictor_class,
)
from repro.engine.cycle import CycleEngine, CycleStats
from repro.engine.functional import FunctionalEngine
from repro.engine.parallel import (
    CellError,
    SweepCell,
    SweepResult,
    make_grid,
    run_cells,
)

__all__ = [
    "ArrayLookaheadBranchPredictor",
    "BACKENDS",
    "create_predictor",
    "predictor_class",
    "CycleEngine",
    "CycleStats",
    "FunctionalEngine",
    "CellError",
    "SweepCell",
    "SweepResult",
    "make_grid",
    "run_cells",
]
