"""Simulation engines: functional (accuracy) and cycle-level (timing)."""

from repro.engine.cycle import CycleEngine, CycleStats
from repro.engine.functional import FunctionalEngine

__all__ = ["CycleEngine", "CycleStats", "FunctionalEngine"]
