"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` — run a predictor over a standard workload and print the
  accuracy report (optionally the per-branch mispredict profile).
* ``compare`` — compare the generation presets (or baselines) over a
  workload.
* ``cycles`` — run the cycle-level engine and print the timing report.
* ``verify`` — run the white-box verification environment.
* ``verify-diff`` — run the differential verification suite (cross-
  engine equivalence, deterministic replay, baseline cross-validation).
* ``sweep`` — fan a (config × workload × seed) grid over warm worker
  processes (serialize-once payload transfer, ``--chunk-size`` cell
  chunking); optionally record a machine-readable throughput report and
  compare it against a committed baseline.  Failing cells surface as
  structured error rows instead of aborting the sweep.
  ``--stream-out`` checkpoints results to JSONL as they complete;
  ``--resume`` restarts a killed sweep from such a stream.
* ``fleet`` — run a full design-space fleet grid (configs × workloads ×
  seeds × fault plans × backends, ~1000 cells) sequentially and over
  the warm pool, and emit the merged ``BENCH_fleet.json`` artifact
  (throughput both ways, measured speedup, equivalence verdict).
* ``faults`` — run a deterministic fault-injection campaign and prove
  the committed branch stream is identical to the fault-free run (the
  predictor is a hint engine: faults may only cost accuracy).
* ``trace`` — run one predictor/workload with a telemetry session
  attached and stream a schema-versioned JSONL branch trace; with
  ``--validate`` the written trace is re-loaded, schema-checked and
  reconciled against the run's stats.
* ``export`` — render a telemetry artifact (trace ``--json`` payload,
  sweep telemetry dump or checkpoint stream) as OpenMetrics text or
  canonical JSON, with per-(backend, engine-mode, workload) rollups
  for multi-cell inputs.
* ``report`` — the observatory: classify BENCH artifacts, sweep
  streams, manifests, span files and bench history, and render one
  markdown dashboard with trend deltas and regression highlights.
* ``serve`` — the prediction service: an asyncio front end multiplexing
  tenant branch streams over supervised warm predictor shard processes,
  with per-tenant journaling, LRU warm-state eviction, backpressure,
  deadlines and crash recovery (SIGTERM/SIGINT drains and writes the
  final manifest).
* ``loadgen`` — replay workload-suite traffic against a running
  ``serve`` instance, retrying clean rejections, and audit that the
  client-folded fingerprint chain matches the server's.
* ``serve-chaos`` — seeded fault-injection scenarios (shard kill/hang/
  slow, torn checkpoints, queue floods, eviction churn) against a live
  server, with liveness / exactness / accounting audits.
* ``workloads`` — list the standard workloads.

``sweep --resume``, ``fleet --resume``, ``trace --validate``,
``export`` and ``report`` accept ``--strict``: a torn JSONL tail (the
signature of a killed writer) becomes a located error instead of being
silently dropped.

``run``/``sweep``/``fleet`` accept ``--metrics-out`` (OpenMetrics
export, implies telemetry), ``--spans-out`` (phase span tracing) and —
for the sweep commands — ``--history`` (append a bench-history row the
``report`` dashboard turns into trend deltas).
"""

from __future__ import annotations

import argparse
import contextlib
import cProfile
import json
import os
import pstats
import sys
import time

from repro.baselines import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    GsharePredictor,
    LTagePredictor,
    StaticBtfntPredictor,
)
from repro.common.atomic import atomic_write_json, atomic_write_text
from repro.common.errors import ReproError
from repro.common.signals import GracefulShutdown
from repro.configs import GENERATIONS, z15_config
from repro.core import LookaheadBranchPredictor, load_state, save_state
from repro.engine import (
    BACKENDS,
    ENGINE_MODES,
    CycleEngine,
    FunctionalEngine,
    PayloadRegistry,
    SweepStreamWriter,
    build_fleet_grid,
    create_predictor,
    load_stream,
    make_grid,
    restore_completed,
    result_to_row,
    run_cells,
    run_fleet,
    stream_cells,
)
from repro.obs import TelemetrySession
from repro.stats import MispredictProfile, load_trace
from repro.verification import StimulusConstraints, VerificationEnvironment
from repro.verification.differential import (
    DEFAULT_WORKLOAD_FAMILIES,
    run_differential_suite,
)
from repro.workloads import STANDARD_WORKLOADS, get_workload

BASELINES = {
    "always-taken": AlwaysTakenPredictor,
    "static-btfnt": StaticBtfntPredictor,
    "bimodal": BimodalPredictor,
    "gshare": GsharePredictor,
    "l-tage": LTagePredictor,
}


def _predictor_for(name: str, backend: str = "object"):
    if name in GENERATIONS:
        factory, _ = GENERATIONS[name]
        return create_predictor(factory(), backend)
    if name in BASELINES:
        if backend != "object":
            raise SystemExit(
                f"--backend {backend} requires a generation preset; "
                f"{name!r} is a baseline predictor"
            )
        return BASELINES[name]()
    known = ", ".join(list(GENERATIONS) + list(BASELINES))
    raise SystemExit(f"unknown predictor {name!r}; known: {known}")


def _stats_payload(stats) -> dict:
    """Machine-readable run stats: the engine-independent invariant
    slice plus the derived headline metrics."""
    from repro.verification.differential import comparable_stats

    payload = comparable_stats(stats)
    payload["instructions_approximate"] = stats.instructions_approximate
    payload["dynamic_coverage"] = stats.dynamic_coverage
    payload["direction_accuracy"] = stats.direction_accuracy
    payload["branch_mpki"] = stats.branch_mpki
    payload["mpki"] = stats.mpki
    return payload


def _write_json(path: str, payload) -> None:
    # Atomic (write-fsync-rename): a kill mid-report leaves the old
    # artifact, never a torn JSON that downstream tooling chokes on.
    atomic_write_json(path, payload, indent=2, trailing_newline=True)
    print(f"wrote {path}")


def _write_text(path, text) -> None:
    atomic_write_text(path, text)
    print(f"wrote {path}")


def _write_metrics(path: str, source) -> None:
    """Render *source* (Telemetry payload or rollup group list) as
    OpenMetrics text."""
    from repro.obs.export import to_openmetrics

    _write_text(path, to_openmetrics(source))


def _span_tracer(args, kind: str):
    """(SpanWriter, SpanTracer) when ``--spans-out`` is set, else
    (None, None) — the engines and pool treat a None tracer as off."""
    if not getattr(args, "spans_out", None):
        return None, None
    from repro.obs.spans import SpanTracer, SpanWriter

    writer = SpanWriter(args.spans_out, kind=kind,
                        context={"command": kind})
    return writer, SpanTracer(writer=writer)


def _finish_spans(writer, tracer) -> None:
    if writer is not None:
        writer.write_summary(tracer)
        writer.close()
        print(f"wrote {writer.path} ({len(tracer.spans)} spans, "
              f"{len(tracer.events)} events)")


def _profiled(args, work):
    """Run *work* under cProfile when ``--profile`` is set, printing a
    top-N table sorted by cumulative and by total time afterwards."""
    if not getattr(args, "profile", False):
        return work()
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return work()
    finally:
        profiler.disable()
        top = args.profile_top
        for sort in ("cumulative", "tottime"):
            print(f"\n-- cProfile top {top} by {sort} --")
            pstats.Stats(profiler, stream=sys.stdout) \
                .strip_dirs().sort_stats(sort).print_stats(top)


def _make_session(args, predictor) -> TelemetrySession:
    """Build a telemetry session matching the run's warmup, so telemetry
    aggregates exactly the counted phase (like RunStats)."""
    return TelemetrySession(
        predictor=predictor
        if isinstance(predictor, LookaheadBranchPredictor) else None,
        interval=args.interval,
        trace_path=args.trace_out,
        trace_every=getattr(args, "every", 1),
        skip=args.warmup,
    ).begin(
        workload=args.workload,
        predictor=args.predictor,
        seed=args.seed,
        branches=args.branches,
    )


def cmd_run(args: argparse.Namespace) -> None:
    predictor = _predictor_for(args.predictor, args.backend)
    if args.load_state:
        if not isinstance(predictor, LookaheadBranchPredictor):
            raise SystemExit("--load-state requires a generation preset")
        loaded = load_state(predictor, args.load_state)
        print(f"restored state: {loaded}")
    profile = MispredictProfile() if args.hot_branches else None
    session = None
    if args.telemetry or args.trace_out or args.metrics_out:
        session = _make_session(args, predictor)
    span_writer, spans = _span_tracer(args, "run")
    engine = FunctionalEngine(predictor, profile=profile, telemetry=session,
                              engine_mode=args.engine_mode, spans=spans)
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    stats = _profiled(args, lambda: engine.run_program(
        get_workload(args.workload, args.seed),
        max_branches=args.branches,
        warmup_branches=args.warmup,
        seed=args.seed,
    ))
    wall_seconds = time.perf_counter() - wall_start
    cpu_seconds = time.process_time() - cpu_start
    if session is not None:
        session.finish(stats)
    _finish_spans(span_writer, spans)
    print(stats.report(f"{args.predictor} / {args.workload}"))
    if profile is not None:
        print()
        print(profile.report(f"{args.workload} hot branches"))
    if session is not None:
        print()
        print(session.report(f"{args.predictor} / {args.workload} telemetry"))
        if args.trace_out:
            print(f"wrote {args.trace_out}")
        if args.metrics_out:
            _write_metrics(args.metrics_out, session.telemetry)
    if args.stats_json:
        from repro.obs.manifest import build_manifest
        from repro.verification.differential import predictor_fingerprint

        payload = _stats_payload(stats)
        payload["manifest"] = build_manifest(
            "run",
            config=getattr(predictor, "config", None),
            config_name=args.predictor,
            backend=args.backend,
            engine_mode=args.engine_mode,
            workload=args.workload,
            seed=args.seed,
            branches=args.branches,
            warmup=args.warmup,
            stats=stats,
            state_fingerprint=(
                predictor_fingerprint(predictor)
                if isinstance(predictor, LookaheadBranchPredictor) else None
            ),
            wall_seconds=wall_seconds,
            cpu_seconds=cpu_seconds,
        )
        _write_json(args.stats_json, payload)
    if args.save_state:
        if not isinstance(predictor, LookaheadBranchPredictor):
            raise SystemExit("--save-state requires a generation preset")
        saved = save_state(predictor, args.save_state)
        print(f"saved state: {saved} -> {args.save_state}")


def cmd_compare(args: argparse.Namespace) -> None:
    names = args.predictors or list(GENERATIONS)
    payloads = {}
    print(f"{'predictor':<14} {'coverage':>9} {'accuracy':>9} {'MPKI':>9}")
    print("-" * 45)
    for name in names:
        engine = FunctionalEngine(_predictor_for(name))
        stats = engine.run_program(
            get_workload(args.workload, args.seed),
            max_branches=args.branches,
            warmup_branches=args.warmup,
            seed=args.seed,
        )
        print(
            f"{name:<14} {stats.dynamic_coverage:>8.2%} "
            f"{stats.direction_accuracy:>8.2%} {stats.mpki:>9.3f}"
        )
        if args.stats_json:
            payloads[name] = _stats_payload(stats)
    if args.stats_json:
        _write_json(args.stats_json, {
            "workload": args.workload,
            "seed": args.seed,
            "branches": args.branches,
            "warmup": args.warmup,
            "predictors": payloads,
        })


def cmd_cycles(args: argparse.Namespace) -> None:
    predictor = _predictor_for(args.predictor, args.backend)
    if not isinstance(predictor, LookaheadBranchPredictor):
        raise SystemExit("the cycle engine requires a generation preset")
    engine = CycleEngine(predictor, smt2=args.smt2,
                         lookahead_prefetch=not args.no_prefetch,
                         engine_mode=args.engine_mode)
    stats = engine.run_program(
        get_workload(args.workload, args.seed),
        max_branches=args.branches,
        seed=args.seed,
    )
    print(stats.report(f"{args.predictor} / {args.workload}"))


def cmd_verify(args: argparse.Namespace) -> None:
    dut = LookaheadBranchPredictor(z15_config())
    env = VerificationEnvironment(
        dut,
        StimulusConstraints(seed=args.seed),
        checkpoint_interval=args.checkpoint_interval,
    )
    report = env.run(branches=args.branches, preload_entries=args.preload)
    print(report.summary())
    if not report.clean:
        sys.exit(1)


def cmd_verify_diff(args: argparse.Namespace) -> None:
    result = run_differential_suite(
        seed=args.seed,
        branches=args.branches,
        workloads=args.workloads or DEFAULT_WORKLOAD_FAMILIES,
        backends=tuple(args.backends),
        engine_modes=tuple(args.engine_modes),
    )
    print(result.summary())
    if not result.clean:
        sys.exit(1)


def _single_run_bps(workload: str, branches: int = 3000, repeats: int = 3,
                    backend: str = "object",
                    engine_mode: str = "reference") -> float:
    """Best-of-N single-engine throughput, benchmark-style: predictor
    construction and workload build sit inside the timed region, exactly
    like ``benchmarks/bench_simulator_throughput.py``.  Kernel
    compilation for fast mode is cached process-wide, so (like any JIT)
    only the first fast run pays it; a warm call outside the timed loop
    makes repeats measure steady state."""
    if engine_mode == "fast":
        FunctionalEngine(create_predictor(z15_config(), backend),
                         engine_mode="fast")
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        engine = FunctionalEngine(create_predictor(z15_config(), backend),
                                  engine_mode=engine_mode)
        program = get_workload(workload)
        engine.run_program(program, max_branches=branches, warmup_branches=0)
        best = max(best, branches / (time.perf_counter() - start))
    return best


def _throughput_payload(cells, workers, seq_results, seq_wall, par_results,
                        par_wall, workload_names, args):
    """Assemble the BENCH_throughput.json document."""
    total_branches = sum(result.branches for result in seq_results)
    equivalent = [r.fingerprint for r in seq_results] == [
        r.fingerprint for r in par_results
    ]
    per_workload = {}
    for name in workload_names:
        seq_cells = [r for r in seq_results if r.workload == name]
        par_cells = [r for r in par_results if r.workload == name]
        branches = sum(r.branches for r in seq_cells)
        seq_seconds = sum(r.elapsed for r in seq_cells)
        par_seconds = sum(r.elapsed for r in par_cells)
        per_workload[name] = {
            "branches": branches,
            "sequential_bps": branches / seq_seconds if seq_seconds else 0.0,
            # In-worker throughput: per-cell wall time measured inside
            # the worker process (pool overhead excluded).
            "parallel_worker_bps": branches / par_seconds if par_seconds else 0.0,
        }
    return {
        "schema": "repro-throughput/v3",
        #: The predictor backend / engine mode the sweep grid ran on;
        #: single_run numbers below always cover the full backends x
        #: engine-modes matrix.
        "backend": args.backend,
        "engine_mode": args.engine_mode,
        #: Interprets the speedup: on a single-CPU box the pool can only
        #: add overhead, so speedup <= 1 is expected there.
        "cpu_count": os.cpu_count(),
        "grid": {
            "configs": list(args.configs),
            "workloads": list(workload_names),
            "seeds": list(args.seeds),
            "branches_per_cell": args.branches,
            "warmup_per_cell": args.warmup,
            "cells": len(cells),
        },
        "sequential": {
            "wall_seconds": seq_wall,
            "branches_per_second": total_branches / seq_wall,
        },
        "parallel": {
            "workers": workers,
            "wall_seconds": par_wall,
            "branches_per_second": total_branches / par_wall,
        },
        "speedup": seq_wall / par_wall if par_wall else 0.0,
        "equivalent": equivalent,
        "workloads": per_workload,
        "single_run": {
            name: {
                backend: {
                    mode: {"branches_per_second":
                           _single_run_bps(name, backend=backend,
                                           engine_mode=mode)}
                    for mode in ENGINE_MODES
                }
                for backend in sorted(BACKENDS)
            }
            for name in ("compute-kernel", "transactions")
        },
    }


def _single_run_floors(baseline):
    """Flatten a baseline's single_run section into (workload, backend,
    engine mode, baseline bps) rows.  v1 files carry one flat number per
    workload (implicitly the object backend, reference mode); v2 files
    nest per backend; v3 files nest per backend per engine mode."""
    rows = []
    for name, entry in baseline.get("single_run", {}).items():
        if "branches_per_second" in entry:  # v1
            rows.append((name, "object", "reference",
                         entry["branches_per_second"]))
            continue
        for backend, numbers in entry.items():
            if "branches_per_second" in numbers:  # v2
                rows.append((name, backend, "reference",
                             numbers["branches_per_second"]))
            else:  # v3: {engine_mode: {branches_per_second: ...}}
                for mode, inner in numbers.items():
                    rows.append((name, backend, mode,
                                 inner["branches_per_second"]))
    return rows


def _check_baseline(payload, baseline_path, max_regression):
    """Compare a throughput payload against a committed baseline; returns
    the list of regression messages (empty when healthy).  The gate is
    per (workload, backend, engine mode): a fast-mode or array-backend
    slowdown fails even when every other cell is healthy."""
    with open(baseline_path) as stream:
        baseline = json.load(stream)
    floor_ratio = 1.0 - max_regression
    failures = []
    current_rows = {
        (name, backend, mode): bps
        for name, backend, mode, bps in _single_run_floors(payload)
    }
    for name, backend, mode, base_bps in _single_run_floors(baseline):
        current = current_rows.get((name, backend, mode))
        if current is None:
            continue
        floor = base_bps * floor_ratio
        if current < floor:
            failures.append(
                f"single-run {name} [{backend}/{mode}]: {current:,.0f} "
                f"branches/s < floor {floor:,.0f} "
                f"(baseline {base_bps:,.0f}, "
                f"max regression {max_regression:.0%})"
            )
    base_seq = baseline.get("sequential", {}).get("branches_per_second")
    if base_seq:
        floor = base_seq * floor_ratio
        current = payload["sequential"]["branches_per_second"]
        if current < floor:
            failures.append(
                f"sequential sweep: {current:,.0f} branches/s < floor "
                f"{floor:,.0f} (baseline {base_seq:,.0f})"
            )
    return failures


def cmd_sweep(args: argparse.Namespace) -> None:
    configs = []
    for name in args.configs:
        if name not in GENERATIONS:
            known = ", ".join(GENERATIONS)
            raise SystemExit(f"unknown config {name!r}; known: {known}")
        factory, _ = GENERATIONS[name]
        configs.append((name, factory()))
    for name in args.workloads:
        if name not in STANDARD_WORKLOADS:
            known = ", ".join(sorted(STANDARD_WORKLOADS))
            raise SystemExit(f"unknown workload {name!r}; known: {known}")
    cells = make_grid(configs, args.workloads, args.seeds,
                      branches=args.branches, warmup=args.warmup,
                      backend=args.backend, engine_mode=args.engine_mode)
    if args.telemetry or args.metrics_out:
        args.telemetry = True
        for cell in cells:
            cell.telemetry = True

    from repro.obs.manifest import build_manifest

    manifest = build_manifest(
        "sweep",
        backend=args.backend,
        engine_mode=args.engine_mode,
        branches=args.branches,
        warmup=args.warmup,
        grid={
            "configs": list(args.configs),
            "workloads": list(args.workloads),
            "seeds": list(args.seeds),
            "cells": len(cells),
        },
        extra={"workers": args.workers, "chunk_size": args.chunk_size},
    )
    span_writer, spans = _span_tracer(args, "sweep")
    throughput_mode = bool(args.throughput or args.json or args.baseline
                           or args.history)
    hardening = {"timeout": args.cell_timeout, "retries": args.cell_retries,
                 "chunk_size": args.chunk_size}
    if throughput_mode and (args.stream_out or args.resume):
        raise SystemExit(
            "--stream-out/--resume checkpoint a single pass; they cannot "
            "be combined with the two-pass --throughput/--json/--baseline "
            "timing mode"
        )
    if throughput_mode:
        # Time the same grid both ways; the fingerprint comparison below
        # doubles as a determinism check on every CI run.  Spans trace
        # the parallel pass (the pool lifecycle is what they decompose).
        start = time.perf_counter()
        results = _profiled(args, lambda: run_cells(cells, workers=1,
                                                    **hardening))
        seq_wall = time.perf_counter() - start
        start = time.perf_counter()
        par_results = run_cells(cells, workers=args.workers, spans=spans,
                                **hardening)
        par_wall = time.perf_counter() - start
    else:
        registry = PayloadRegistry()
        completed = {}
        if args.resume:
            completed = restore_completed(
                load_stream(args.resume, strict=args.strict), cells, registry
            )
            print(f"resumed {len(completed)} completed cell(s) "
                  f"from {args.resume}")
        start = time.perf_counter()
        stream = stream_cells(cells, workers=args.workers,
                              completed=completed, spans=spans, **hardening)
        if args.stream_out:
            results = []
            # SIGTERM/SIGINT drain gracefully: the row in flight is
            # flushed, a final manifest line records the interruption
            # (load_stream skips manifest rows, so the stream stays
            # --resume-able), and the process exits 128+signum.
            with GracefulShutdown() as shutdown, \
                    SweepStreamWriter(args.stream_out,
                                      manifest=manifest) as writer:
                for index, result in enumerate(stream):
                    writer.write(
                        result_to_row(index, cells[index], result, registry)
                    )
                    results.append(result)
                    if shutdown.requested:
                        writer.write(dict(manifest, interrupted={
                            "signal": shutdown.signum,
                            "rows_written": writer.rows_written,
                            "cells_total": len(cells),
                        }))
                        break
            if shutdown.requested:
                print(f"interrupted by signal {shutdown.signum}: flushed "
                      f"{len(results)} of {len(cells)} row(s) to "
                      f"{args.stream_out}; resume with "
                      f"--resume {args.stream_out}")
                sys.exit(shutdown.exit_code)
            print(f"streamed {len(results)} rows to {args.stream_out}")
        else:
            results = _profiled(args, lambda: list(stream))
        seq_wall = time.perf_counter() - start
    manifest["timings"] = {
        "wall_seconds": seq_wall + (par_wall if throughput_mode else 0.0),
        "cpu_seconds": None,
    }
    _finish_spans(span_writer, spans)

    header = (f"{'config':<8} {'workload':<18} {'seed':>4} {'coverage':>9} "
              f"{'accuracy':>9} {'MPKI':>8}  fingerprint")
    print(header)
    print("-" * len(header))
    failed = 0
    for result in results:
        stats = result.stats
        if stats is None:  # CellError row: the cell failed, sweep survived
            failed += 1
            print(
                f"{result.label:<8} {result.workload:<18} {result.seed:>4} "
                f"FAILED {result.kind} after {result.attempts} attempt(s): "
                f"{result.message}"
            )
            continue
        print(
            f"{result.label:<8} {result.workload:<18} {result.seed:>4} "
            f"{stats.dynamic_coverage:>8.2%} {stats.direction_accuracy:>8.2%} "
            f"{stats.mpki:>8.3f}  {result.fingerprint[:12]}"
        )
    total_branches = sum(result.branches for result in results)
    print(
        f"\n{len(results)} cells, {total_branches} branches: "
        f"{seq_wall:.2f}s ({total_branches / seq_wall:,.0f} branches/s, "
        f"workers={1 if throughput_mode else args.workers})"
    )
    if args.telemetry and args.telemetry_json:
        _write_json(args.telemetry_json, {
            "schema": "repro-sweep-telemetry/v1",
            "manifest": manifest,
            "cells": [
                {
                    "label": result.label,
                    "workload": result.workload,
                    "seed": result.seed,
                    "telemetry": result.telemetry,
                }
                for result in results
            ],
        })
    if args.metrics_out:
        from repro.obs.export import rollup_results

        _write_metrics(args.metrics_out, rollup_results(cells, results))

    if failed:
        print(f"\n{failed} cell(s) failed; see FAILED rows above")
        sys.exit(1)
    if not throughput_mode:
        return
    payload = _throughput_payload(cells, args.workers, results, seq_wall,
                                  par_results, par_wall, args.workloads, args)
    payload["manifest"] = manifest
    print(
        f"parallel (workers={args.workers}): {par_wall:.2f}s "
        f"({payload['parallel']['branches_per_second']:,.0f} branches/s, "
        f"speedup {payload['speedup']:.2f}x, "
        f"equivalent={payload['equivalent']})"
    )
    for name, backend, mode, bps in _single_run_floors(payload):
        print(f"single-run {name} [{backend}/{mode}]: {bps:,.0f} branches/s")
    if not payload["equivalent"]:
        print("FAIL: parallel results diverge from sequential")
        sys.exit(1)
    if args.json:
        _write_json(args.json, payload)
    if args.history:
        from repro.obs.observatory import (
            append_history,
            history_row,
            throughput_metrics,
        )

        append_history(args.history, history_row(
            "throughput", throughput_metrics(payload), manifest=manifest,
        ))
        print(f"appended throughput history row to {args.history}")
    if args.baseline:
        failures = _check_baseline(payload, args.baseline, args.max_regression)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}")
            sys.exit(1)
        print(f"throughput within {args.max_regression:.0%} of baseline "
              f"{args.baseline}")


def cmd_fleet(args: argparse.Namespace) -> None:
    for name in args.configs:
        if name not in GENERATIONS:
            known = ", ".join(GENERATIONS)
            raise SystemExit(f"unknown config {name!r}; known: {known}")
    for name in args.workloads:
        if name not in STANDARD_WORKLOADS:
            known = ", ".join(sorted(STANDARD_WORKLOADS))
            raise SystemExit(f"unknown workload {name!r}; known: {known}")
    seeds = list(range(1, args.seed_count + 1))
    fault_rates = [0.0] + ([args.fault_rate] if args.fault_rate > 0 else [])
    cells = build_fleet_grid(
        configs=args.configs,
        workloads=args.workloads,
        seeds=seeds,
        backends=args.backends,
        fault_rates=fault_rates,
        branches=args.branches,
        warmup=args.warmup,
        engine_modes=args.engine_modes,
    )
    grid_info = {
        "configs": list(args.configs),
        "workloads": list(args.workloads),
        "seeds": seeds,
        "backends": list(args.backends),
        "engine_modes": list(args.engine_modes),
        "fault_plans": ["none"] + (
            [f"rate={args.fault_rate:g}"] if args.fault_rate > 0 else []
        ),
        "branches_per_cell": args.branches,
        "warmup_per_cell": args.warmup,
    }
    print(f"fleet sweep: {len(cells)} cells "
          f"({len(args.configs)} configs x {len(args.workloads)} workloads "
          f"x {len(seeds)} seeds x {len(fault_rates)} fault plans "
          f"x {len(args.backends)} backends "
          f"x {len(args.engine_modes)} engine modes), "
          f"{args.branches}+{args.warmup} branches/cell")
    if args.telemetry or args.metrics_out:
        for cell in cells:
            cell.telemetry = True
    span_writer, spans = _span_tracer(args, "fleet")
    # Graceful-drain is only meaningful when rows are being
    # checkpointed; without --stream-out the default signal behaviour
    # (abort) is the right one.
    shutdown = GracefulShutdown() if args.stream_out else None
    with (shutdown if shutdown is not None else contextlib.nullcontext()):
        payload, seq_results, par_results = run_fleet(
            cells,
            workers=args.workers,
            chunk_size=args.chunk_size,
            timeout=args.cell_timeout,
            retries=args.cell_retries,
            stream_out=args.stream_out,
            resume=args.resume,
            strict=args.strict,
            grid_info=grid_info,
            spans=spans,
            shutdown=shutdown,
        )
    _finish_spans(span_writer, spans)
    if shutdown is not None and shutdown.requested:
        print(f"interrupted by signal {shutdown.signum}: flushed "
              f"{len(par_results)} of {len(cells)} parallel row(s) to "
              f"{args.stream_out}; resume with --resume {args.stream_out}")
        sys.exit(shutdown.exit_code)
    print(f"sequential: {payload['sequential']['wall_seconds']:.2f}s "
          f"({payload['sequential']['branches_per_second']:,.0f} branches/s)")
    print(f"parallel (workers={args.workers}, chunk={args.chunk_size}): "
          f"{payload['parallel']['wall_seconds']:.2f}s "
          f"({payload['parallel']['branches_per_second']:,.0f} branches/s, "
          f"{payload['parallel']['chunks_dispatched']} chunks)")
    print(f"speedup {payload['speedup']:.2f}x on {payload['cpu_count']} "
          f"core(s), equivalent={payload['equivalent']}, "
          f"failed_cells={payload['failed_cells']}")
    print(f"payload transfer: {payload['payloads']['distinct_blobs']} "
          f"distinct blobs, {payload['payloads']['bytes']:,} bytes, "
          f"{payload['payloads']['parent_pickle_calls']} parent pickles "
          f"for {len(cells)} cells")
    print(f"result transfer: {payload['results']['blobs']} chunk blobs, "
          f"{payload['results']['bytes']:,} bytes "
          f"({payload['results']['bytes_saved']:,} saved vs per-cell "
          f"pickling)")
    if args.json:
        _write_json(args.json, payload)
    if args.metrics_out:
        from repro.obs.export import rollup_results

        _write_metrics(args.metrics_out,
                       rollup_results(cells, par_results))
    if args.history:
        from repro.obs.observatory import (
            append_history,
            fleet_metrics,
            history_row,
        )

        append_history(args.history, history_row(
            "fleet", fleet_metrics(payload),
            manifest=payload.get("manifest"),
        ))
        print(f"appended fleet history row to {args.history}")
    failed = [r for r in par_results if r.stats is None]
    for result in failed[:10]:
        print(f"FAILED {result.label}/{result.workload}/seed {result.seed}: "
              f"{result.kind} after {result.attempts} attempt(s): "
              f"{result.message}")
    if not payload["equivalent"]:
        print("FAIL: parallel results diverge from sequential")
        sys.exit(1)
    if failed:
        print(f"\n{len(failed)} cell(s) failed; see FAILED rows above")
        sys.exit(1)
    if args.require_speedup is not None:
        cores = os.cpu_count() or 1
        if cores >= 2 and args.workers >= 2:
            if payload["speedup"] < args.require_speedup:
                print(f"FAIL: speedup {payload['speedup']:.2f}x below "
                      f"required {args.require_speedup:.2f}x "
                      f"on {cores} cores")
                sys.exit(1)
            print(f"speedup gate passed: {payload['speedup']:.2f}x >= "
                  f"{args.require_speedup:.2f}x")
        else:
            print(f"speedup gate skipped: {cores} core(s) available — "
                  f"a process pool cannot beat sequential without "
                  f"parallel hardware")


def cmd_faults(args: argparse.Namespace) -> None:
    from repro.resilience import FAULT_KINDS, FaultPlan, fault_equivalence_report

    kinds = tuple(args.fault_kinds) if args.fault_kinds else FAULT_KINDS
    plan = FaultPlan(
        seed=args.fault_seed,
        rate=args.fault_rate,
        kinds=kinds,
        parity=args.parity,
        audit_interval=args.audit_interval,
    ).validate()
    impact = fault_equivalence_report(
        args.workload,
        plan,
        branches=args.branches,
        seed=args.seed,
        warmup=args.warmup,
        engine_mode=args.engine_mode,
    )
    counters = impact.fault_counters
    parity = "on" if plan.parity else "off"
    print(f"fault campaign: {args.workload} x {args.branches} branches "
          f"(rate={plan.rate}, kinds={','.join(plan.kinds)}, "
          f"parity={parity}, fault-seed={plan.seed})")
    print(f"  injected  {counters['injected']:>6} "
          f"(detected {counters['detected']}, silent {counters['silent']}, "
          f"recovered {counters['recovered']})")
    print(f"  no-ops    {counters['attempts_empty']:>6} "
          f"(fault fired on an empty structure)")
    print(f"  audits    {counters['audits']:>6} clean")
    print(f"  fault-free  MPKI {impact.baseline_mpki:>8.3f}  "
          f"accuracy {impact.baseline_accuracy:>7.2%}")
    print(f"  faulted     MPKI {impact.faulted_mpki:>8.3f}  "
          f"accuracy {impact.faulted_accuracy:>7.2%}  "
          f"(delta {impact.mpki_delta:+.3f} MPKI)")
    if args.stats_json:
        _write_json(args.stats_json, {
            "schema": "repro-faults/v1",
            "workload": args.workload,
            "seed": args.seed,
            "branches": args.branches,
            "warmup": args.warmup,
            "plan": {
                "seed": plan.seed,
                "rate": plan.rate,
                "kinds": list(plan.kinds),
                "parity": plan.parity,
                "audit_interval": plan.audit_interval,
            },
            "counters": counters,
            "baseline": {
                "mpki": impact.baseline_mpki,
                "direction_accuracy": impact.baseline_accuracy,
                "fingerprint": impact.baseline_fingerprint,
            },
            "faulted": {
                "mpki": impact.faulted_mpki,
                "direction_accuracy": impact.faulted_accuracy,
                "fingerprint": impact.faulted_fingerprint,
            },
            "mpki_delta": impact.mpki_delta,
            "architecturally_equivalent": impact.report.clean,
        })
    if impact.report.clean:
        print("  architectural equivalence: CLEAN — committed branch stream "
              "identical to the fault-free run")
    else:
        print(impact.report.summary())
        sys.exit(1)


def cmd_trace(args: argparse.Namespace) -> None:
    predictor = _predictor_for(args.predictor, args.backend)
    session = _make_session(args, predictor)
    engine = FunctionalEngine(predictor, telemetry=session,
                              engine_mode=args.engine_mode)
    stats = engine.run_program(
        get_workload(args.workload, args.seed),
        max_branches=args.branches,
        warmup_branches=args.warmup,
        seed=args.seed,
    )
    session.finish(stats)
    print(stats.report(f"{args.predictor} / {args.workload}"))
    print()
    print(session.report(f"{args.predictor} / {args.workload} telemetry"))
    if args.trace_out:
        records = session.writer.records_written if session.writer else 0
        print(f"wrote {args.trace_out} ({records} records)")
    if args.json:
        payload = session.to_dict()
        payload["stats"] = _stats_payload(stats)
        _write_json(args.json, payload)
    if args.validate:
        if not args.trace_out:
            raise SystemExit("--validate requires --trace-out")
        from repro.obs.trace import reconcile_with_stats

        document = load_trace(args.trace_out, strict=args.strict)
        problems = document.reconcile()
        if not document.sampled:
            problems += reconcile_with_stats(document.branches, stats)
        if problems:
            for problem in problems:
                print(f"RECONCILE: {problem}")
            # A sampled trace legitimately can't reconcile per-branch;
            # only full traces make mismatches fatal.
            if not document.sampled:
                sys.exit(1)
        else:
            print(
                f"validated {args.trace_out}: {len(document.branches)} "
                f"branch records, {len(document.intervals)} intervals, "
                f"reconciled clean against run stats"
            )


def _load_export_source(path: str, strict: bool = False):
    """Classify a telemetry artifact for ``repro export``.

    Accepts a run/trace ``--json`` payload (one Telemetry ``to_dict``
    document), a ``repro-sweep-telemetry/v1`` dump (grouped per
    (label, workload)), an OpenMetrics text file written by
    ``--metrics-out`` (re-parsed, so ``export x.om --format json``
    converts back to canonical JSON), or a sweep/fleet checkpoint
    stream whose cells ran with ``--telemetry`` (grouped per (backend,
    engine-mode, workload)).  Returns whatever :func:`repro.obs.
    export.to_openmetrics` accepts.
    """
    from repro.obs.export import parse_openmetrics
    from repro.obs.telemetry import Telemetry

    with open(path) as stream:
        text = stream.read()
    stripped = text.lstrip()
    if stripped.startswith(("# HELP", "# TYPE", "# EOF")):
        return parse_openmetrics(text)
    try:
        document = json.loads(text)
    except json.JSONDecodeError:
        document = None
    if isinstance(document, dict) and document.get("schema") not in (
        "repro-sweep-stream/v1", "repro-manifest/v1",
    ):
        if document.get("schema") == "repro-sweep-telemetry/v1":
            groups = {}
            for cell in document.get("cells", []):
                payload = cell.get("telemetry")
                if not payload:
                    continue
                labels = (("label", str(cell.get("label"))),
                          ("workload", str(cell.get("workload"))))
                groups.setdefault(labels, Telemetry()).merge(payload)
            if not groups:
                raise SystemExit(
                    f"{path}: sweep telemetry dump carries no telemetry "
                    f"registries"
                )
            return sorted(groups.items())
        if any(key in document
               for key in ("counters", "gauges", "histograms")):
            return document
        raise SystemExit(
            f"{path}: not a telemetry artifact (expected a telemetry "
            f"JSON payload, a repro-sweep-telemetry/v1 dump or a "
            f"checkpoint stream)"
        )
    # JSONL checkpoint stream (possibly manifest-headed).
    rows = load_stream(path, strict=strict)
    groups = {}
    for row in rows:
        payload = row.get("telemetry")
        if not payload:
            continue
        cell = row["cell"]
        labels = (("backend", str(cell.get("backend"))),
                  ("engine_mode", str(cell.get("engine_mode"))),
                  ("workload", str(cell.get("workload"))))
        groups.setdefault(labels, Telemetry()).merge(payload)
    if not groups:
        raise SystemExit(
            f"{path}: stream carries no telemetry — re-run the sweep "
            f"with --telemetry to export metrics from it"
        )
    return sorted(groups.items())


def cmd_export(args: argparse.Namespace) -> None:
    from repro.obs.export import to_canonical_json, to_openmetrics

    source = _load_export_source(args.input, strict=args.strict)
    if args.format == "json":
        text = to_canonical_json(source)
    else:
        text = to_openmetrics(source)
    if args.out:
        _write_text(args.out, text)
    else:
        sys.stdout.write(text)


def cmd_report(args: argparse.Namespace) -> None:
    from repro.obs.observatory import collect_artifacts, render_dashboard

    artifacts = collect_artifacts(args.paths)
    text = render_dashboard(artifacts, title=args.title, strict=args.strict)
    if args.out:
        _write_text(args.out, text)
    else:
        print(text)


def _serve_options(args: argparse.Namespace):
    from repro.serve import ServeOptions

    return ServeOptions(
        shards=args.shards,
        queue_depth=args.queue_depth,
        warm_tenants=args.warm_tenants,
        shed_highwater=args.shed_highwater,
        heartbeat_interval=args.heartbeat_interval,
        heartbeat_timeout=args.heartbeat_timeout,
        request_timeout=args.request_timeout,
        checkpoint_every=args.checkpoint_every,
        default_deadline_ms=args.deadline_ms,
    )


def cmd_serve(args: argparse.Namespace) -> None:
    import asyncio

    from repro.serve import PredictorServer

    options = _serve_options(args)

    async def _run(shutdown: GracefulShutdown) -> None:
        server = PredictorServer(args.spool, options,
                                 host=args.host, port=args.port)
        await server.start()
        print(f"serving on {server.host}:{server.port} "
              f"({options.shards} shard(s), spool {args.spool}); "
              f"SIGINT/SIGTERM drains, checkpoints warm tenants and "
              f"writes the final manifest")
        try:
            while not shutdown.requested:
                await asyncio.sleep(0.1)
        finally:
            reason = (f"signal:{shutdown.signum}"
                      if shutdown.requested else "shutdown")
            metrics = (await server.stop(reason=reason))["serve"]["metrics"]
            print(f"stopped ({reason}): {metrics['received']} received, "
                  f"{metrics['answered']} answered, "
                  f"{metrics['restarts']} shard restart(s), "
                  f"accounted={metrics['accounted']}; manifest at "
                  f"{os.path.join(args.spool, 'manifest.json')}")

    with GracefulShutdown() as shutdown:
        asyncio.run(_run(shutdown))
    if shutdown.requested:
        sys.exit(shutdown.exit_code)


def cmd_loadgen(args: argparse.Namespace) -> None:
    import asyncio

    from repro.obs.manifest import build_manifest
    from repro.serve import LoadGenerator, TenantPlan

    for name in args.workloads:
        if name not in STANDARD_WORKLOADS:
            known = ", ".join(sorted(STANDARD_WORKLOADS))
            raise SystemExit(f"unknown workload {name!r}; known: {known}")
    plans = [
        TenantPlan(
            f"{args.tenant_prefix}{index}",
            workload=args.workloads[index % len(args.workloads)],
            seed=args.seed + index,
            branches=args.branches,
            batch_size=args.batch_size,
            config=args.config,
            backend=args.backend,
            deadline_ms=args.deadline_ms,
            burst=args.burst,
            pace=args.pace,
        )
        for index in range(args.tenants)
    ]
    start = time.perf_counter()
    report = asyncio.run(LoadGenerator(args.host, args.port).run(plans))
    wall = time.perf_counter() - start
    for tenant in report["tenants"]:
        rejections = ",".join(f"{code}={count}" for code, count
                              in tenant["rejections"].items()) or "-"
        print(f"{tenant['tenant']:<16} {tenant['answered']:>4}/"
              f"{tenant['batches']:<4} batches  "
              f"attempts={tenant['attempts']:<5} retries={tenant['retries']:<3} "
              f"rejections={rejections:<24} "
              f"chains_agree={tenant['chains_agree']}")
    answered = sum(tenant["answered"] for tenant in report["tenants"])
    print(f"{len(plans)} tenant(s), {answered} batch(es) answered in "
          f"{wall:.2f}s; complete={report['complete']} "
          f"chains_agree={report['chains_agree']}")
    if args.json:
        _write_json(args.json, build_manifest(
            "loadgen",
            config_name=args.config,
            backend=args.backend,
            branches=args.branches,
            seed=args.seed,
            wall_seconds=wall,
            extra={"loadgen": {
                "host": args.host,
                "port": args.port,
                "plans": [plan.to_dict() for plan in plans],
                "report": report,
            }},
        ))
    if not (report["complete"] and report["chains_agree"]):
        print("FAIL: load was not fully answered with matching "
              "fingerprint chains")
        sys.exit(1)


def cmd_serve_chaos(args: argparse.Namespace) -> None:
    import tempfile

    from repro.serve import SCENARIOS, run_chaos

    scenarios = list(args.scenarios) if args.scenarios else list(SCENARIOS)
    with contextlib.ExitStack() as stack:
        spool = args.spool
        if spool is None:
            spool = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-chaos-")
            )
        report = run_chaos(scenarios, args.seed, spool,
                           tenants=args.tenants, branches=args.branches,
                           batch=args.batch_size)
    for scenario in report["scenarios"]:
        verdict = "PASS" if scenario["passed"] else "FAIL"
        injected = {key: value for key, value
                    in scenario["injected"].items() if value}
        print(f"{verdict} {scenario['scenario']:<10} "
              f"injected={injected or 'none'}")
        for check in scenario["checks"]:
            mark = "ok  " if check["passed"] else "FAIL"
            detail = f"  ({check['detail']})" if (check["detail"] and
                                                 not check["passed"]) else ""
            print(f"    [{mark}] {check['name']}{detail}")
    if args.json:
        _write_json(args.json, report)
    if not report["passed"]:
        print("FAIL: at least one chaos scenario failed its checks")
        sys.exit(1)
    print(f"chaos clean: {len(report['scenarios'])} scenario(s) passed "
          f"(seed {args.seed})")


def cmd_workloads(_args: argparse.Namespace) -> None:
    for spec in STANDARD_WORKLOADS.values():
        print(f"{spec.name:<20} {spec.description}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="IBM z15 branch predictor model (ISCA 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one predictor/workload")
    run_parser.add_argument("workload", nargs="?", default="transactions")
    run_parser.add_argument("--predictor", default="z15")
    run_parser.add_argument("--backend", choices=sorted(BACKENDS),
                            default="object",
                            help="predictor backend (generation presets "
                                 "only; default object)")
    run_parser.add_argument("--branches", type=int, default=30_000)
    run_parser.add_argument("--warmup", type=int, default=10_000)
    run_parser.add_argument("--seed", type=int, default=1)
    run_parser.add_argument("--engine-mode", choices=ENGINE_MODES,
                            default="reference",
                            help="drive mode: reference interpreter or the "
                                 "config-specialized compiled kernels "
                                 "(byte-identical results; default "
                                 "reference)")
    run_parser.add_argument("--hot-branches", action="store_true",
                            help="print the hot-branch mispredict profile")
    run_parser.add_argument("--profile", action="store_true",
                            help="run under cProfile and print the top-N "
                                 "table (cumulative + tottime)")
    run_parser.add_argument("--profile-top", type=int, default=15,
                            metavar="N",
                            help="rows per cProfile table (default 15)")
    run_parser.add_argument("--telemetry", action="store_true",
                            help="attach a telemetry session and print the "
                                 "per-component report")
    run_parser.add_argument("--trace-out", metavar="PATH",
                            help="write a JSONL branch trace (implies "
                                 "--telemetry)")
    run_parser.add_argument("--interval", type=int, default=2_000,
                            help="telemetry sampling window in branches "
                                 "(default 2000; 0 disables)")
    run_parser.add_argument("--stats-json", metavar="PATH",
                            help="write the run stats (with the embedded "
                                 "run manifest) as machine-readable JSON")
    run_parser.add_argument("--metrics-out", metavar="PATH",
                            help="write the run telemetry as OpenMetrics "
                                 "text (implies --telemetry)")
    run_parser.add_argument("--spans-out", metavar="PATH",
                            help="write engine phase spans as JSONL "
                                 "(repro-spans/v1; results unchanged)")
    run_parser.add_argument("--save-state", metavar="PATH",
                            help="save the learned BTB/CTB state after the run")
    run_parser.add_argument("--load-state", metavar="PATH",
                            help="preload saved state before the run")
    run_parser.set_defaults(func=cmd_run)

    compare_parser = sub.add_parser("compare",
                                    help="compare predictors on a workload")
    compare_parser.add_argument("workload", nargs="?", default="transactions")
    compare_parser.add_argument("--predictors", nargs="*",
                                help="default: the four generation presets")
    compare_parser.add_argument("--branches", type=int, default=20_000)
    compare_parser.add_argument("--warmup", type=int, default=8_000)
    compare_parser.add_argument("--seed", type=int, default=1)
    compare_parser.add_argument("--stats-json", metavar="PATH",
                                help="write per-predictor stats as "
                                     "machine-readable JSON")
    compare_parser.set_defaults(func=cmd_compare)

    cycles_parser = sub.add_parser("cycles", help="cycle-level timing run")
    cycles_parser.add_argument("workload", nargs="?", default="transactions")
    cycles_parser.add_argument("--predictor", default="z15")
    cycles_parser.add_argument("--backend", choices=sorted(BACKENDS),
                               default="object")
    cycles_parser.add_argument("--branches", type=int, default=15_000)
    cycles_parser.add_argument("--seed", type=int, default=1)
    cycles_parser.add_argument("--engine-mode", choices=ENGINE_MODES,
                               default="reference",
                               help="drive mode for the prediction pipeline "
                                    "(timing model unchanged; default "
                                    "reference)")
    cycles_parser.add_argument("--smt2", action="store_true")
    cycles_parser.add_argument("--no-prefetch", action="store_true")
    cycles_parser.set_defaults(func=cmd_cycles)

    verify_parser = sub.add_parser("verify",
                                   help="white-box verification run")
    verify_parser.add_argument("--branches", type=int, default=5_000)
    verify_parser.add_argument("--preload", type=int, default=200)
    verify_parser.add_argument("--seed", type=int, default=1234)
    verify_parser.add_argument("--checkpoint-interval", type=int, default=500)
    verify_parser.set_defaults(func=cmd_verify)

    diff_parser = sub.add_parser(
        "verify-diff",
        help="differential verification: engines, replay, baselines")
    diff_parser.add_argument("--branches", type=int, default=3_000)
    diff_parser.add_argument("--seed", type=int, default=1234)
    diff_parser.add_argument(
        "--workloads", nargs="*", metavar="NAME",
        help=f"workload families to cross-check "
             f"(default: {' '.join(DEFAULT_WORKLOAD_FAMILIES)})")
    diff_parser.add_argument(
        "--backends", nargs="*", choices=sorted(BACKENDS),
        default=["object", "array"], metavar="BACKEND",
        help="predictor backends to verify; the first is the reference "
             "the others are differentially compared against "
             "(default: object array)")
    diff_parser.add_argument(
        "--engine-modes", nargs="*", choices=ENGINE_MODES,
        default=["reference", "fast"], metavar="MODE",
        help="engine modes to verify as a matrix against the backends; "
             "the first is the reference mode (default: reference fast)")
    diff_parser.set_defaults(func=cmd_verify_diff)

    sweep_parser = sub.add_parser(
        "sweep",
        help="parallel (config x workload x seed) sweep with optional "
             "throughput report")
    sweep_parser.add_argument("--configs", nargs="*", metavar="GEN",
                              default=list(GENERATIONS),
                              help="generation presets (default: all four)")
    sweep_parser.add_argument("--workloads", nargs="*", metavar="NAME",
                              default=["compute-kernel", "transactions"])
    sweep_parser.add_argument("--seeds", nargs="*", type=int, default=[1])
    sweep_parser.add_argument("--backend", choices=sorted(BACKENDS),
                              default="object",
                              help="predictor backend every cell runs on "
                                   "(default object)")
    sweep_parser.add_argument("--engine-mode", choices=ENGINE_MODES,
                              default="reference",
                              help="drive mode every cell runs on "
                                   "(default reference)")
    sweep_parser.add_argument("--branches", type=int, default=6_000)
    sweep_parser.add_argument("--warmup", type=int, default=2_000)
    sweep_parser.add_argument("--workers", type=int, default=1)
    sweep_parser.add_argument("--profile", action="store_true",
                              help="run the sequential pass under cProfile "
                                   "and print the top-N table")
    sweep_parser.add_argument("--profile-top", type=int, default=15,
                              metavar="N",
                              help="rows per cProfile table (default 15)")
    sweep_parser.add_argument("--throughput", action="store_true",
                              help="also time the grid sequentially vs "
                                   "parallel and print single-run numbers")
    sweep_parser.add_argument("--json", metavar="PATH",
                              help="write the throughput report (implies "
                                   "--throughput)")
    sweep_parser.add_argument("--baseline", metavar="PATH",
                              help="committed throughput baseline to compare "
                                   "against (implies --throughput)")
    sweep_parser.add_argument("--max-regression", type=float, default=0.30,
                              help="fail if throughput drops more than this "
                                   "fraction below the baseline (default 0.30)")
    sweep_parser.add_argument("--telemetry", action="store_true",
                              help="attach a telemetry session to every cell "
                                   "(results are unchanged; registries ride "
                                   "back on the results)")
    sweep_parser.add_argument("--telemetry-json", metavar="PATH",
                              help="write every cell's telemetry registry "
                                   "as JSON (with --telemetry)")
    sweep_parser.add_argument("--cell-timeout", type=float, default=None,
                              metavar="SECONDS",
                              help="per-cell attempt timeout; a hung worker "
                                   "is terminated and the cell retried "
                                   "(default: unbounded)")
    sweep_parser.add_argument("--cell-retries", type=int, default=1,
                              help="re-attempts for a failing cell before "
                                   "its slot becomes an error row "
                                   "(default 1)")
    sweep_parser.add_argument("--chunk-size", type=int, default=1,
                              help="cells per warm-worker dispatch "
                                   "(default 1; larger chunks amortise "
                                   "pool round-trips on big grids)")
    sweep_parser.add_argument("--stream-out", metavar="PATH",
                              help="checkpoint each result row to this "
                                   "JSONL file as it completes (submission "
                                   "order; resumable with --resume)")
    sweep_parser.add_argument("--resume", metavar="PATH",
                              help="resume a killed sweep from its partial "
                                   "--stream-out file: completed cells are "
                                   "not re-run")
    sweep_parser.add_argument("--strict", action="store_true",
                              help="refuse a torn final line in the "
                                   "--resume stream instead of silently "
                                   "dropping it")
    sweep_parser.add_argument("--metrics-out", metavar="PATH",
                              help="write per-(backend, engine-mode, "
                                   "workload) telemetry rollups as "
                                   "OpenMetrics text (implies --telemetry)")
    sweep_parser.add_argument("--spans-out", metavar="PATH",
                              help="write pool phase spans "
                                   "(serialize/transfer/execute/merge) as "
                                   "JSONL (repro-spans/v1)")
    sweep_parser.add_argument("--history", metavar="PATH",
                              help="append a throughput bench-history row "
                                   "to this JSONL (implies --throughput; "
                                   "repro report renders trend deltas "
                                   "from it)")
    sweep_parser.set_defaults(func=cmd_sweep)

    fleet_parser = sub.add_parser(
        "fleet",
        help="fleet-scale (config x workload x seed x fault-plan x "
             "backend) sweep; emits the merged BENCH_fleet.json artifact "
             "with a measured sequential-vs-parallel speedup")
    fleet_parser.add_argument("--configs", nargs="*", metavar="GEN",
                              default=list(GENERATIONS),
                              help="generation presets (default: all four)")
    fleet_parser.add_argument("--workloads", nargs="*", metavar="NAME",
                              default=["compute-kernel", "transactions",
                                       "dispatch", "patterned"])
    fleet_parser.add_argument("--seed-count", type=int, default=8,
                              help="seeds 1..N per (config, workload) "
                                   "(default 8 -> ~1000 cells on the "
                                   "default axes)")
    fleet_parser.add_argument("--backends", nargs="*",
                              choices=sorted(BACKENDS),
                              default=["object", "array"], metavar="BACKEND")
    fleet_parser.add_argument("--engine-modes", nargs="*",
                              choices=ENGINE_MODES, default=["reference"],
                              metavar="MODE",
                              help="engine-mode axis (default: reference "
                                   "only; add fast for the full matrix)")
    fleet_parser.add_argument("--fault-rate", type=float, default=0.01,
                              help="fault-plan axis: every cell runs clean "
                                   "and again under a deterministic plan at "
                                   "this rate (0 drops the fault axis; "
                                   "default 0.01)")
    fleet_parser.add_argument("--branches", type=int, default=300)
    fleet_parser.add_argument("--warmup", type=int, default=100)
    fleet_parser.add_argument("--workers", type=int, default=2)
    fleet_parser.add_argument("--chunk-size", type=int, default=16,
                              help="cells per warm-worker dispatch "
                                   "(default 16)")
    fleet_parser.add_argument("--cell-timeout", type=float, default=None,
                              metavar="SECONDS")
    fleet_parser.add_argument("--cell-retries", type=int, default=1)
    fleet_parser.add_argument("--json", metavar="PATH",
                              help="write the merged BENCH_fleet report")
    fleet_parser.add_argument("--stream-out", metavar="PATH",
                              help="checkpoint the parallel pass's rows to "
                                   "this JSONL file as they complete")
    fleet_parser.add_argument("--strict", action="store_true",
                              help="refuse a torn final line in the "
                                   "--resume stream instead of silently "
                                   "dropping it")
    fleet_parser.add_argument("--resume", metavar="PATH",
                              help="resume the parallel pass from a partial "
                                   "--stream-out file")
    fleet_parser.add_argument("--require-speedup", type=float, default=None,
                              metavar="X",
                              help="exit 1 unless speedup >= X (enforced "
                                   "only with >= 2 cores and >= 2 workers; "
                                   "the CI gate)")
    fleet_parser.add_argument("--telemetry", action="store_true",
                              help="attach a telemetry session to every "
                                   "cell (results unchanged)")
    fleet_parser.add_argument("--metrics-out", metavar="PATH",
                              help="write per-(backend, engine-mode, "
                                   "workload) telemetry rollups as "
                                   "OpenMetrics text (implies --telemetry)")
    fleet_parser.add_argument("--spans-out", metavar="PATH",
                              help="write the parallel pass's pool phase "
                                   "spans as JSONL (repro-spans/v1)")
    fleet_parser.add_argument("--history", metavar="PATH",
                              help="append a fleet bench-history row to "
                                   "this JSONL (repro report renders trend "
                                   "deltas from it)")
    fleet_parser.set_defaults(func=cmd_fleet)

    faults_parser = sub.add_parser(
        "faults",
        help="fault-injection campaign with architectural-equivalence "
             "check against the fault-free run")
    faults_parser.add_argument("workload", nargs="?", default="transactions")
    faults_parser.add_argument("--branches", type=int, default=5_000)
    faults_parser.add_argument("--warmup", type=int, default=0)
    faults_parser.add_argument("--seed", type=int, default=1234,
                               help="workload seed (default 1234)")
    faults_parser.add_argument("--fault-seed", type=int, default=1,
                               help="seed for the injector's private RNG")
    faults_parser.add_argument("--fault-rate", type=float, default=0.01,
                               help="per-branch fault probability "
                                    "(default 0.01)")
    faults_parser.add_argument("--fault-kinds", nargs="*", metavar="KIND",
                               help="fault kinds to enable (default: all; "
                                    "see repro.resilience.FAULT_KINDS)")
    faults_parser.add_argument("--parity", action="store_true", default=True,
                               help="model per-entry parity detection + "
                                    "invalidate-on-error recovery (default)")
    faults_parser.add_argument("--no-parity", dest="parity",
                               action="store_false",
                               help="disable parity: every corruption is "
                                    "silent")
    faults_parser.add_argument("--audit-interval", type=int, default=1_000,
                               help="structural audit every N branches "
                                    "(0 disables; default 1000)")
    faults_parser.add_argument("--engine-mode", choices=ENGINE_MODES,
                               default="reference",
                               help="drive mode for both the fault-free and "
                                    "faulted runs (default reference)")
    faults_parser.add_argument("--stats-json", metavar="PATH",
                               help="write the campaign report as "
                                    "machine-readable JSON")
    faults_parser.set_defaults(func=cmd_faults)

    trace_parser = sub.add_parser(
        "trace",
        help="telemetry-instrumented run with a JSONL branch trace")
    trace_parser.add_argument("--workload", default="transactions")
    trace_parser.add_argument("--predictor", default="z15")
    trace_parser.add_argument("--backend", choices=sorted(BACKENDS),
                              default="object")
    trace_parser.add_argument("--branches", type=int, default=10_000)
    trace_parser.add_argument("--warmup", type=int, default=0,
                              help="uncounted warmup branches (default 0 so "
                                   "the trace covers the whole run)")
    trace_parser.add_argument("--engine-mode", choices=ENGINE_MODES,
                              default="reference",
                              help="drive mode (telemetry rides the same "
                                   "observer seam in both; default "
                                   "reference)")
    trace_parser.add_argument("--seed", type=int, default=1)
    trace_parser.add_argument("--interval", type=int, default=1_000,
                              help="interval-sampler window in branches "
                                   "(default 1000; 0 disables)")
    trace_parser.add_argument("--every", type=int, default=1,
                              help="record every N-th branch (default 1; "
                                   ">1 disables per-branch reconciliation)")
    trace_parser.add_argument("--trace-out", metavar="PATH",
                              help="JSONL trace output path")
    trace_parser.add_argument("--json", metavar="PATH",
                              help="write the telemetry registry + stats as "
                                   "JSON")
    trace_parser.add_argument("--validate", action="store_true",
                              help="re-load the written trace, schema-check "
                                   "every line and reconcile against the "
                                   "run's stats")
    trace_parser.add_argument("--strict", action="store_true",
                              help="with --validate, refuse a torn final "
                                   "trace line instead of dropping it")
    trace_parser.set_defaults(func=cmd_trace)

    export_parser = sub.add_parser(
        "export",
        help="render a telemetry artifact as OpenMetrics text or "
             "canonical JSON")
    export_parser.add_argument("input", metavar="PATH",
                               help="telemetry JSON payload, "
                                    "repro-sweep-telemetry/v1 dump or "
                                    "checkpoint stream with telemetry rows")
    export_parser.add_argument("--format", choices=("openmetrics", "json"),
                               default="openmetrics",
                               help="output format (default openmetrics)")
    export_parser.add_argument("--out", metavar="PATH",
                               help="output file (default: stdout)")
    export_parser.add_argument("--strict", action="store_true",
                               help="refuse torn JSONL tails in checkpoint-"
                                    "stream inputs instead of dropping them")
    export_parser.set_defaults(func=cmd_export)

    report_parser = sub.add_parser(
        "report",
        help="observatory dashboard over BENCH artifacts, streams, "
             "manifests, spans and bench history")
    report_parser.add_argument("paths", nargs="+", metavar="PATH",
                               help="artifact files or directories "
                                    "(directories scanned one level deep)")
    report_parser.add_argument("--title", default="repro observatory",
                               help="dashboard title")
    report_parser.add_argument("--out", metavar="PATH",
                               help="write the markdown here "
                                    "(default: stdout)")
    report_parser.add_argument("--strict", action="store_true",
                               help="refuse torn tails in JSONL artifacts "
                                    "(streams, spans, history) instead of "
                                    "dropping them")
    report_parser.set_defaults(func=cmd_report)

    serve_parser = sub.add_parser(
        "serve",
        help="multi-tenant prediction service over supervised warm "
             "predictor shards")
    serve_parser.add_argument("--spool", default="serve-spool",
                              metavar="DIR",
                              help="durable state root: per-tenant "
                                   "journals/snapshots, events.jsonl, "
                                   "final manifest.json (default "
                                   "serve-spool)")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=0,
                              help="listen port (default 0: pick a free "
                                   "one and print it)")
    serve_parser.add_argument("--shards", type=int, default=2,
                              help="warm predictor worker processes "
                                   "(default 2)")
    serve_parser.add_argument("--queue-depth", type=int, default=8,
                              help="outstanding batches per tenant before "
                                   "queue-full rejections (default 8)")
    serve_parser.add_argument("--warm-tenants", type=int, default=64,
                              help="tenants kept warm before LRU eviction "
                                   "to the lossy state tier (default 64)")
    serve_parser.add_argument("--shed-highwater", type=int, default=256,
                              help="total outstanding batches before load "
                                   "shedding (default 256)")
    serve_parser.add_argument("--heartbeat-interval", type=float,
                              default=0.25, metavar="SECONDS",
                              help="supervisor ping period (default 0.25)")
    serve_parser.add_argument("--heartbeat-timeout", type=float,
                              default=3.0, metavar="SECONDS",
                              help="unresponsive-shard threshold before a "
                                   "restart from journals (default 3)")
    serve_parser.add_argument("--request-timeout", type=float, default=60.0,
                              metavar="SECONDS",
                              help="hard cap on any one request "
                                   "(default 60)")
    serve_parser.add_argument("--checkpoint-every", type=int, default=4,
                              help="snapshot + journal rotation period in "
                                   "batches per tenant (default 4)")
    serve_parser.add_argument("--deadline-ms", type=int, default=None,
                              help="default per-request deadline when the "
                                   "client sends none")
    serve_parser.set_defaults(func=cmd_serve)

    loadgen_parser = sub.add_parser(
        "loadgen",
        help="replay workload-suite traffic against a running serve "
             "instance and audit the fingerprint chains")
    loadgen_parser.add_argument("--host", default="127.0.0.1")
    loadgen_parser.add_argument("--port", type=int, required=True,
                                help="port of the running serve instance")
    loadgen_parser.add_argument("--tenants", type=int, default=3)
    loadgen_parser.add_argument("--tenant-prefix", default="tenant-",
                                help="tenant ids are PREFIX0..PREFIXn-1 "
                                     "(default tenant-)")
    loadgen_parser.add_argument("--workloads", nargs="+",
                                default=["transactions", "dispatch",
                                         "services", "correlated"],
                                metavar="NAME",
                                help="cycled across tenants")
    loadgen_parser.add_argument("--config", default="z15")
    loadgen_parser.add_argument("--backend", choices=sorted(BACKENDS),
                                default="object")
    loadgen_parser.add_argument("--seed", type=int, default=1)
    loadgen_parser.add_argument("--branches", type=int, default=240,
                                help="branches per tenant (default 240)")
    loadgen_parser.add_argument("--batch-size", type=int, default=40)
    loadgen_parser.add_argument("--burst", type=int, default=1,
                                help="batches sent concurrently per wave "
                                     "(default 1)")
    loadgen_parser.add_argument("--pace", type=float, default=0.0,
                                metavar="SECONDS",
                                help="think time between waves (default 0)")
    loadgen_parser.add_argument("--deadline-ms", type=int, default=None,
                                help="per-request deadline attached to "
                                     "every predict (default: none)")
    loadgen_parser.add_argument("--json", metavar="PATH",
                                help="write the loadgen manifest + per-"
                                     "tenant report as JSON")
    loadgen_parser.set_defaults(func=cmd_loadgen)

    chaos_parser = sub.add_parser(
        "serve-chaos",
        help="seeded fault-injection scenarios against a live server: "
             "kill/hang/slow/torn/flood/churn with liveness, exactness "
             "and accounting audits")
    chaos_parser.add_argument("scenarios", nargs="*", metavar="SCENARIO",
                              help="scenario names (default: all of "
                                   "baseline, kill, hang, slow, torn, "
                                   "flood, churn)")
    chaos_parser.add_argument("--seed", type=int, default=1,
                              help="seeds fault timing, targets and "
                                   "tenant traffic (default 1)")
    chaos_parser.add_argument("--spool", default=None, metavar="DIR",
                              help="keep spools under this directory "
                                   "(default: a temporary directory, "
                                   "removed afterwards)")
    chaos_parser.add_argument("--tenants", type=int, default=3)
    chaos_parser.add_argument("--branches", type=int, default=240,
                              help="branches per tenant (default 240)")
    chaos_parser.add_argument("--batch-size", type=int, default=40)
    chaos_parser.add_argument("--json", metavar="PATH",
                              help="write the repro-chaos/v1 report here")
    chaos_parser.set_defaults(func=cmd_serve_chaos)

    workloads_parser = sub.add_parser("workloads",
                                      help="list standard workloads")
    workloads_parser.set_defaults(func=cmd_workloads)
    return parser


def main(argv=None) -> None:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        args.func(args)
    except ReproError as error:
        # Library errors (bad config, malformed trace/state file, audit
        # failure...) are user-facing: one line on stderr, exit code 2 —
        # distinct from verification failures (1) and argparse usage
        # errors (argparse's own 2 with usage text).
        print(f"error: {type(error).__name__}: {error}", file=sys.stderr)
        sys.exit(2)


if __name__ == "__main__":
    main()
