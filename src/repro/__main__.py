"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` — run a predictor over a standard workload and print the
  accuracy report (optionally the per-branch mispredict profile).
* ``compare`` — compare the generation presets (or baselines) over a
  workload.
* ``cycles`` — run the cycle-level engine and print the timing report.
* ``verify`` — run the white-box verification environment.
* ``verify-diff`` — run the differential verification suite (cross-
  engine equivalence, deterministic replay, baseline cross-validation).
* ``workloads`` — list the standard workloads.
"""

from __future__ import annotations

import argparse
import sys

from repro.baselines import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    GsharePredictor,
    LTagePredictor,
    StaticBtfntPredictor,
)
from repro.configs import GENERATIONS, z15_config
from repro.core import LookaheadBranchPredictor, load_state, save_state
from repro.engine import CycleEngine, FunctionalEngine
from repro.stats import MispredictProfile
from repro.verification import StimulusConstraints, VerificationEnvironment
from repro.verification.differential import (
    DEFAULT_WORKLOAD_FAMILIES,
    run_differential_suite,
)
from repro.workloads import STANDARD_WORKLOADS, get_workload

BASELINES = {
    "always-taken": AlwaysTakenPredictor,
    "static-btfnt": StaticBtfntPredictor,
    "bimodal": BimodalPredictor,
    "gshare": GsharePredictor,
    "l-tage": LTagePredictor,
}


def _predictor_for(name: str):
    if name in GENERATIONS:
        factory, _ = GENERATIONS[name]
        return LookaheadBranchPredictor(factory())
    if name in BASELINES:
        return BASELINES[name]()
    known = ", ".join(list(GENERATIONS) + list(BASELINES))
    raise SystemExit(f"unknown predictor {name!r}; known: {known}")


def cmd_run(args: argparse.Namespace) -> None:
    predictor = _predictor_for(args.predictor)
    if args.load_state:
        if not isinstance(predictor, LookaheadBranchPredictor):
            raise SystemExit("--load-state requires a generation preset")
        loaded = load_state(predictor, args.load_state)
        print(f"restored state: {loaded}")
    profile = MispredictProfile() if args.profile else None
    engine = FunctionalEngine(predictor, profile=profile)
    stats = engine.run_program(
        get_workload(args.workload, args.seed),
        max_branches=args.branches,
        warmup_branches=args.warmup,
        seed=args.seed,
    )
    print(stats.report(f"{args.predictor} / {args.workload}"))
    if profile is not None:
        print()
        print(profile.report(f"{args.workload} hot branches"))
    if args.save_state:
        if not isinstance(predictor, LookaheadBranchPredictor):
            raise SystemExit("--save-state requires a generation preset")
        saved = save_state(predictor, args.save_state)
        print(f"saved state: {saved} -> {args.save_state}")


def cmd_compare(args: argparse.Namespace) -> None:
    names = args.predictors or list(GENERATIONS)
    print(f"{'predictor':<14} {'coverage':>9} {'accuracy':>9} {'MPKI':>9}")
    print("-" * 45)
    for name in names:
        engine = FunctionalEngine(_predictor_for(name))
        stats = engine.run_program(
            get_workload(args.workload, args.seed),
            max_branches=args.branches,
            warmup_branches=args.warmup,
            seed=args.seed,
        )
        print(
            f"{name:<14} {stats.dynamic_coverage:>8.2%} "
            f"{stats.direction_accuracy:>8.2%} {stats.mpki:>9.3f}"
        )


def cmd_cycles(args: argparse.Namespace) -> None:
    predictor = _predictor_for(args.predictor)
    if not isinstance(predictor, LookaheadBranchPredictor):
        raise SystemExit("the cycle engine requires a generation preset")
    engine = CycleEngine(predictor, smt2=args.smt2,
                         lookahead_prefetch=not args.no_prefetch)
    stats = engine.run_program(
        get_workload(args.workload, args.seed),
        max_branches=args.branches,
        seed=args.seed,
    )
    print(stats.report(f"{args.predictor} / {args.workload}"))


def cmd_verify(args: argparse.Namespace) -> None:
    dut = LookaheadBranchPredictor(z15_config())
    env = VerificationEnvironment(
        dut,
        StimulusConstraints(seed=args.seed),
        checkpoint_interval=args.checkpoint_interval,
    )
    report = env.run(branches=args.branches, preload_entries=args.preload)
    print(report.summary())
    if not report.clean:
        sys.exit(1)


def cmd_verify_diff(args: argparse.Namespace) -> None:
    result = run_differential_suite(
        seed=args.seed,
        branches=args.branches,
        workloads=args.workloads or DEFAULT_WORKLOAD_FAMILIES,
    )
    print(result.summary())
    if not result.clean:
        sys.exit(1)


def cmd_workloads(_args: argparse.Namespace) -> None:
    for spec in STANDARD_WORKLOADS.values():
        print(f"{spec.name:<20} {spec.description}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="IBM z15 branch predictor model (ISCA 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one predictor/workload")
    run_parser.add_argument("workload", nargs="?", default="transactions")
    run_parser.add_argument("--predictor", default="z15")
    run_parser.add_argument("--branches", type=int, default=30_000)
    run_parser.add_argument("--warmup", type=int, default=10_000)
    run_parser.add_argument("--seed", type=int, default=1)
    run_parser.add_argument("--profile", action="store_true",
                            help="print the hot-branch mispredict profile")
    run_parser.add_argument("--save-state", metavar="PATH",
                            help="save the learned BTB/CTB state after the run")
    run_parser.add_argument("--load-state", metavar="PATH",
                            help="preload saved state before the run")
    run_parser.set_defaults(func=cmd_run)

    compare_parser = sub.add_parser("compare",
                                    help="compare predictors on a workload")
    compare_parser.add_argument("workload", nargs="?", default="transactions")
    compare_parser.add_argument("--predictors", nargs="*",
                                help="default: the four generation presets")
    compare_parser.add_argument("--branches", type=int, default=20_000)
    compare_parser.add_argument("--warmup", type=int, default=8_000)
    compare_parser.add_argument("--seed", type=int, default=1)
    compare_parser.set_defaults(func=cmd_compare)

    cycles_parser = sub.add_parser("cycles", help="cycle-level timing run")
    cycles_parser.add_argument("workload", nargs="?", default="transactions")
    cycles_parser.add_argument("--predictor", default="z15")
    cycles_parser.add_argument("--branches", type=int, default=15_000)
    cycles_parser.add_argument("--seed", type=int, default=1)
    cycles_parser.add_argument("--smt2", action="store_true")
    cycles_parser.add_argument("--no-prefetch", action="store_true")
    cycles_parser.set_defaults(func=cmd_cycles)

    verify_parser = sub.add_parser("verify",
                                   help="white-box verification run")
    verify_parser.add_argument("--branches", type=int, default=5_000)
    verify_parser.add_argument("--preload", type=int, default=200)
    verify_parser.add_argument("--seed", type=int, default=1234)
    verify_parser.add_argument("--checkpoint-interval", type=int, default=500)
    verify_parser.set_defaults(func=cmd_verify)

    diff_parser = sub.add_parser(
        "verify-diff",
        help="differential verification: engines, replay, baselines")
    diff_parser.add_argument("--branches", type=int, default=3_000)
    diff_parser.add_argument("--seed", type=int, default=1234)
    diff_parser.add_argument(
        "--workloads", nargs="*", metavar="NAME",
        help=f"workload families to cross-check "
             f"(default: {' '.join(DEFAULT_WORKLOAD_FAMILIES)})")
    diff_parser.set_defaults(func=cmd_verify_diff)

    workloads_parser = sub.add_parser("workloads",
                                      help="list standard workloads")
    workloads_parser.set_defaults(func=cmd_workloads)
    return parser


def main(argv=None) -> None:
    parser = build_parser()
    args = parser.parse_args(argv)
    args.func(args)


if __name__ == "__main__":
    main()
