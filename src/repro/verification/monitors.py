"""Interface and unit monitors.

The :class:`BtbInterfaceMonitor` attaches to the DUT's white-box signal
taps and abstracts install/remove/search events into transactions; the
read-side and write-side unit monitors consume them *decoupled from each
other* (figure 11): the read-side checker compares search results
against the hardware-driven reference mirror; the write-side checker
validates the install path's expected behaviour (dedup, capacity).
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.errors import VerificationError
from repro.core.btb1 import Btb1
from repro.verification.reference import ReferenceBtb1Mirror
from repro.verification.transactions import (
    InstallTransaction,
    RemoveTransaction,
    SearchTransaction,
)


class Failure:
    """One detected mismatch, with enough context to debug."""

    def __init__(self, checker: str, message: str, serial: int):
        self.checker = checker
        self.message = message
        self.serial = serial

    def __repr__(self) -> str:
        return f"[{self.checker} @ txn {self.serial}] {self.message}"


class BtbInterfaceMonitor:
    """Taps the BTB1's signals and fans transactions out to checkers.

    Individual checkers can be disabled via the ``enabled_checkers``
    set, mirroring the paper's "disabling certain checkers via parameter
    files while there were pending fixes".
    """

    READ_CHECKER = "read-side"
    WRITE_CHECKER = "write-side"

    def __init__(self, btb1: Btb1, enabled_checkers: Optional[set] = None):
        self.btb1 = btb1
        self.mirror = ReferenceBtb1Mirror(btb1.config.rows, btb1.config.ways)
        self.enabled_checkers = (
            enabled_checkers
            if enabled_checkers is not None
            else {self.READ_CHECKER, self.WRITE_CHECKER}
        )
        self.failures: List[Failure] = []
        self.search_transactions = 0
        self.install_transactions = 0
        self.remove_transactions = 0
        self._serial = 0
        btb1.on_search = self._on_search
        btb1.on_install = self._on_install
        btb1.on_remove = self._on_remove

    def detach(self) -> None:
        self.btb1.on_search = None
        self.btb1.on_install = None
        self.btb1.on_remove = None

    # ------------------------------------------------------------------
    # Signal taps -> transactions
    # ------------------------------------------------------------------

    def _next_serial(self) -> int:
        self._serial += 1
        return self._serial

    def _on_search(self, line_base, context, min_offset, hits) -> None:
        txn = SearchTransaction(
            serial=self._next_serial(),
            line_base=line_base,
            context=context,
            min_offset=min_offset,
            hits=tuple(
                (hit.row, hit.way, hit.entry.tag, hit.entry.offset) for hit in hits
            ),
        )
        self.search_transactions += 1
        self._check_search(txn)

    def _on_install(self, address, context, entry, result) -> None:
        txn = InstallTransaction(
            serial=self._next_serial(),
            address=address,
            context=context,
            row=result.row,
            way=result.way,
            installed=result.installed,
            duplicate=result.duplicate,
            tag=entry.tag,
            offset=entry.offset,
            victim_present=result.victim is not None,
        )
        self.install_transactions += 1
        self._check_install(txn)
        self.mirror.apply_install(txn)

    def _on_remove(self, row, way, entry) -> None:
        txn = RemoveTransaction(
            serial=self._next_serial(),
            row=row,
            way=way,
            tag=entry.tag,
            offset=entry.offset,
        )
        self.remove_transactions += 1
        self.mirror.apply_remove(txn)

    # ------------------------------------------------------------------
    # Read-side checker
    # ------------------------------------------------------------------

    def _check_search(self, txn: SearchTransaction) -> None:
        """Every reported hit must exist in the mirror with a matching
        tag/offset, and every mirror entry that should have matched must
        be reported (no dropped hits)."""
        if self.READ_CHECKER not in self.enabled_checkers:
            return
        expected_row = self.btb1.row_of(txn.line_base)
        expected_tag = self.btb1.tag_of(txn.line_base, txn.context)
        reported = set()
        for row, way, tag, offset in txn.hits:
            reported.add((row, way))
            if row != expected_row:
                self._fail(
                    self.READ_CHECKER,
                    f"hit reported from row {row}, search indexed row "
                    f"{expected_row}",
                    txn.serial,
                )
            mirror_entry = self.mirror.slot(row, way)
            if mirror_entry is None:
                self._fail(
                    self.READ_CHECKER,
                    f"hit at ({row},{way}) but mirror slot is empty",
                    txn.serial,
                )
                continue
            if mirror_entry.tag != tag or mirror_entry.offset != offset:
                self._fail(
                    self.READ_CHECKER,
                    f"hit at ({row},{way}) tag/offset {tag}/{offset} != "
                    f"mirror {mirror_entry.tag}/{mirror_entry.offset}",
                    txn.serial,
                )
        # Completeness: mirror entries that match the search must appear.
        for way, mirror_entry in self.mirror.row_entries(expected_row):
            if (
                mirror_entry.tag == expected_tag
                and mirror_entry.offset >= txn.min_offset
                and (expected_row, way) not in reported
            ):
                self._fail(
                    self.READ_CHECKER,
                    f"mirror entry at ({expected_row},{way}) matched the "
                    "search but was not reported",
                    txn.serial,
                )

    # ------------------------------------------------------------------
    # Write-side checker
    # ------------------------------------------------------------------

    def _check_install(self, txn: InstallTransaction) -> None:
        """The read-before-write filter must reject duplicates: an
        install may only succeed if no live mirror entry already has the
        same (tag, offset) in the row — and must be rejected when one
        does."""
        if self.WRITE_CHECKER not in self.enabled_checkers:
            return
        existing = [
            way
            for way, entry in self.mirror.row_entries(txn.row)
            if entry.tag == txn.tag and entry.offset == txn.offset
        ]
        if txn.installed and existing and existing != [txn.way]:
            self._fail(
                self.WRITE_CHECKER,
                f"install at row {txn.row} created a duplicate of ways "
                f"{existing}",
                txn.serial,
            )
        if txn.duplicate and not existing:
            self._fail(
                self.WRITE_CHECKER,
                f"install at row {txn.row} rejected as duplicate but the "
                "mirror shows no duplicate",
                txn.serial,
            )

    # ------------------------------------------------------------------
    # Checkpoints and failure handling
    # ------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Crosscheck the full mirror against the hardware array state.

        "At certain checkpoint events, monitors crosschecked these expect
        values with the actual state of the hardware driven model."
        """
        hardware = {
            (row, way): (entry.tag, entry.offset)
            for row, way, entry in self.btb1.entries()
        }
        mirrored = {
            key: (entry.tag, entry.offset)
            for key, entry in self.mirror.slots().items()
        }
        if hardware != mirrored:
            only_hw = set(hardware) - set(mirrored)
            only_mirror = set(mirrored) - set(hardware)
            self._fail(
                "checkpoint",
                f"mirror diverged: hardware-only slots {sorted(only_hw)[:4]}, "
                f"mirror-only slots {sorted(only_mirror)[:4]}",
                self._serial,
            )

    def _fail(self, checker: str, message: str, serial: int) -> None:
        self.failures.append(Failure(checker, message, serial))

    def assert_clean(self) -> None:
        if self.failures:
            raise VerificationError(
                f"{len(self.failures)} verification failures; first: "
                f"{self.failures[0]!r}"
            )
