"""Prediction-consistency checking (the read side of figure 11, at the
semantic level).

The interface monitors validate the arrays; this unit monitor validates
the *selection logic*: every prediction delivered to the consumers must
obey the figure-8/figure-9 provider rules.  It consumes
:class:`~repro.core.predictor.PredictionOutcome` records straight off the
prediction interface, so it can run inside any engine-driven simulation
(the paper's "monitors ... enabled ... also in higher level verification
environments").
"""

from __future__ import annotations

from typing import List

from repro.core.predictor import PredictionOutcome
from repro.core.providers import DirectionProvider, TargetProvider
from repro.isa.instructions import UNCONDITIONAL_KINDS
from repro.verification.monitors import Failure


class PredictionRuleChecker:
    """Checks each delivered prediction against the selection rules."""

    def __init__(self) -> None:
        self.failures: List[Failure] = []
        self.checked = 0

    def _fail(self, message: str) -> None:
        self.failures.append(Failure("prediction-rules", message, self.checked))

    def check(self, outcome: PredictionOutcome) -> None:
        """Validate one prediction outcome."""
        self.checked += 1
        record = outcome.record
        if record.dynamic:
            self._check_dynamic(record)
        else:
            self._check_surprise(record)

    # ------------------------------------------------------------------
    # Figure 8 rules
    # ------------------------------------------------------------------

    def _check_dynamic(self, record) -> None:
        provider = record.direction_provider
        if provider is DirectionProvider.STATIC:
            self._fail(
                f"dynamic prediction at {record.address:#x} reported a "
                "static direction provider"
            )
        if provider is DirectionProvider.UNCONDITIONAL:
            if not record.predicted_taken:
                self._fail(
                    f"unconditional-provided prediction at "
                    f"{record.address:#x} was not taken"
                )
        # Auxiliary direction providers require the bidirectional state
        # at prediction time (figure 8's first diamond).
        aux_providers = (
            DirectionProvider.PERCEPTRON,
            DirectionProvider.PHT_SHORT,
            DirectionProvider.PHT_LONG,
            DirectionProvider.SPHT,
        )
        if provider in aux_providers and not record.bidirectional_at_prediction:
            self._fail(
                f"aux direction provider {provider.value} used at "
                f"{record.address:#x} without the bidirectional state"
            )
        if record.predicted_taken:
            self._check_target_rules(record)
        else:
            if record.predicted_target is not None:
                self._fail(
                    f"not-taken prediction at {record.address:#x} carries "
                    "a target"
                )

    # ------------------------------------------------------------------
    # Figure 9 rules
    # ------------------------------------------------------------------

    def _check_target_rules(self, record) -> None:
        provider = record.target_provider
        if record.predicted_target is None:
            self._fail(
                f"taken dynamic prediction at {record.address:#x} has no "
                "target (the BTB1 always has a target)"
            )
            return
        if provider is TargetProvider.NONE:
            self._fail(
                f"taken dynamic prediction at {record.address:#x} reported "
                "no target provider"
            )
        if provider in (TargetProvider.CTB, TargetProvider.CRS):
            if not record.multi_target_at_prediction:
                self._fail(
                    f"{provider.value} target used at {record.address:#x} "
                    "without the multi-target state"
                )
        if provider is TargetProvider.CRS:
            if not record.marked_return_at_prediction:
                self._fail(
                    f"CRS target used at {record.address:#x} on a branch "
                    "not marked as a return"
                )
            if record.blacklisted_at_prediction:
                self._fail(
                    f"CRS target used at {record.address:#x} on a "
                    "blacklisted branch"
                )
        if provider is TargetProvider.CTB:
            if record.ctb is None or not record.ctb.hit:
                self._fail(
                    f"CTB target reported at {record.address:#x} without a "
                    "recorded CTB hit"
                )

    # ------------------------------------------------------------------
    # Surprise rules (section IV statics)
    # ------------------------------------------------------------------

    def _check_surprise(self, record) -> None:
        if record.direction_provider is not DirectionProvider.STATIC:
            self._fail(
                f"surprise branch at {record.address:#x} reported a "
                "dynamic direction provider"
            )
        guessed_taken = record.predicted_taken
        if record.kind in UNCONDITIONAL_KINDS and not guessed_taken:
            self._fail(
                f"unconditional surprise at {record.address:#x} statically "
                "guessed not-taken"
            )
        if guessed_taken and record.predicted_target is not None:
            if record.target_provider is not TargetProvider.STATIC_RELATIVE:
                self._fail(
                    f"surprise taken target at {record.address:#x} from "
                    f"{record.target_provider.value}"
                )

    def assert_clean(self) -> None:
        if self.failures:
            raise AssertionError(
                f"{len(self.failures)} prediction-rule violations; first: "
                f"{self.failures[0]!r}"
            )
