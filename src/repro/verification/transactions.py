"""Transaction abstractions.

Interface monitors "abstract signals in the design into Transactions"
(figure 11).  Each transaction is an immutable record of one interface
or internal event of the DUT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class SearchTransaction:
    """One BTB1 read-port search: the line searched and the hits the
    hardware reported, as (row, way, tag, offset) tuples."""

    serial: int
    line_base: int
    context: int
    min_offset: int
    hits: Tuple[Tuple[int, int, int, int], ...]


@dataclass(frozen=True)
class InstallTransaction:
    """One write-port install attempt."""

    serial: int
    address: int
    context: int
    row: int
    way: Optional[int]
    installed: bool
    duplicate: bool
    tag: int
    offset: int
    victim_present: bool


@dataclass(frozen=True)
class RemoveTransaction:
    """One bad-prediction removal."""

    serial: int
    row: int
    way: int
    tag: int
    offset: int


@dataclass(frozen=True)
class PredictionTransaction:
    """One prediction as delivered to the IDU/ICM consumers."""

    serial: int
    address: int
    dynamic: bool
    predicted_taken: bool
    predicted_target: Optional[int]
    direction_provider: str
    target_provider: str
