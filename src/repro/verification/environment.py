"""The composed white-box verification environment (figure 11).

Wires a DUT (:class:`LookaheadBranchPredictor`) to the interface
monitor, drives it with constrained-random stimulus (optionally after
array preloading), runs periodic checkpoint crosschecks, and reports
failures.  Invariant checks over the DUT's architectural state run at
every checkpoint as additional unit monitors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.predictor import LookaheadBranchPredictor
from repro.verification.monitors import BtbInterfaceMonitor, Failure
from repro.verification.prediction_checker import PredictionRuleChecker
from repro.verification.preload import preload_random
from repro.verification.stimulus import RandomBranchDriver, StimulusConstraints
from repro.workloads.multi import ContextSwitch


@dataclass
class VerificationReport:
    """Results of one verification run."""

    branches_driven: int = 0
    checkpoints: int = 0
    search_transactions: int = 0
    install_transactions: int = 0
    failures: List[Failure] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "CLEAN" if self.clean else f"{len(self.failures)} FAILURES"
        lines = [
            f"verification run: {status}",
            f"  branches driven:      {self.branches_driven}",
            f"  checkpoints:          {self.checkpoints}",
            f"  search transactions:  {self.search_transactions}",
            f"  install transactions: {self.install_transactions}",
        ]
        for failure in self.failures[:10]:
            lines.append(f"  {failure!r}")
        return "\n".join(lines)


class VerificationEnvironment:
    """Constrained-random + white-box checking around one DUT."""

    def __init__(
        self,
        dut: LookaheadBranchPredictor,
        constraints: Optional[StimulusConstraints] = None,
        checkpoint_interval: int = 500,
        enabled_checkers: Optional[set] = None,
    ):
        self.dut = dut
        self.constraints = (
            constraints if constraints is not None else StimulusConstraints()
        )
        self.checkpoint_interval = checkpoint_interval
        self.monitor = BtbInterfaceMonitor(dut.btb1, enabled_checkers)
        self.rule_checker = PredictionRuleChecker()
        self.driver = RandomBranchDriver(self.constraints)

    def run(
        self,
        branches: int,
        preload_entries: int = 0,
    ) -> VerificationReport:
        """Drive the DUT and return the collected report."""
        if preload_entries:
            preload_random(self.dut, preload_entries, seed=self.constraints.seed)
        report = VerificationReport()
        self.dut.restart(self.constraints.address_base, context=0)
        since_checkpoint = 0
        for event in self.driver.events(branches):
            if isinstance(event, ContextSwitch):
                self.dut.context_switch(event.entry_point, event.context)
                continue
            outcome = self.dut.predict_and_resolve(event)
            self.rule_checker.check(outcome)
            report.branches_driven += 1
            since_checkpoint += 1
            if since_checkpoint >= self.checkpoint_interval:
                since_checkpoint = 0
                self.monitor.checkpoint()
                self._invariant_checks()
                report.checkpoints += 1
        self.dut.finalize()
        self.monitor.checkpoint()
        self._invariant_checks()
        report.checkpoints += 1
        report.search_transactions = self.monitor.search_transactions
        report.install_transactions = self.monitor.install_transactions
        report.failures = list(self.monitor.failures) + list(
            self.rule_checker.failures
        )
        return report

    # ------------------------------------------------------------------
    # Architectural invariants (additional unit monitors)
    # ------------------------------------------------------------------

    def _invariant_checks(self) -> None:
        self._check_no_row_duplicates()
        self._check_counter_ranges()
        self._check_skoot_ranges()
        self._check_btb2_bounds()

    def _check_no_row_duplicates(self) -> None:
        """No two live entries in a row share (tag, offset) — the
        property the BTBP used to guarantee and the z15 write port's
        read-before-write must now uphold (section III)."""
        seen = {}
        for row, way, entry in self.dut.btb1.entries():
            key = (row, entry.tag, entry.offset)
            if key in seen:
                self.monitor._fail(
                    "invariant",
                    f"duplicate entries in row {row}: ways {seen[key]} and "
                    f"{way} share tag {entry.tag} offset {entry.offset}",
                    self.monitor.search_transactions,
                )
            seen[key] = way

    def _check_counter_ranges(self) -> None:
        for row, way, entry in self.dut.btb1.entries():
            if not 0 <= entry.bht.value <= 3:
                self.monitor._fail(
                    "invariant",
                    f"BHT counter out of range at ({row},{way}): "
                    f"{entry.bht.value}",
                    self.monitor.search_transactions,
                )

    def _check_skoot_ranges(self) -> None:
        maximum = self.dut.config.skoot_max
        for row, way, entry in self.dut.btb1.entries():
            if entry.skoot is not None and not 0 <= entry.skoot <= maximum:
                self.monitor._fail(
                    "invariant",
                    f"SKOOT field out of range at ({row},{way}): {entry.skoot}",
                    self.monitor.search_transactions,
                )

    def _check_btb2_bounds(self) -> None:
        """BTB2 and staging-queue structural invariants."""
        btb2 = self.dut.btb2
        if btb2 is None:
            return
        if btb2.occupancy > btb2.capacity:
            self.monitor._fail(
                "invariant",
                f"BTB2 occupancy {btb2.occupancy} exceeds capacity "
                f"{btb2.capacity}",
                self.monitor.search_transactions,
            )
        if len(btb2.staging) > btb2.config.staging_capacity:
            self.monitor._fail(
                "invariant",
                f"staging queue over capacity: {len(btb2.staging)}",
                self.monitor.search_transactions,
            )
        line_size = btb2.config.line_size
        for transfer in btb2.staging:
            if transfer.entry.offset >= line_size or transfer.entry.offset % 2:
                self.monitor._fail(
                    "invariant",
                    f"staged transfer with bad offset {transfer.entry.offset}",
                    self.monitor.search_transactions,
                )
