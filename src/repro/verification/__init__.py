"""White-box verification environment (paper section VII).

Reproduces the methodology: hardware-signal-driven reference models,
decoupled read-side/write-side checking, constrained-random stimulus
from a parameter file, array preloading, and checkpoint crosschecks.
"""

from repro.verification.differential import (
    BaselineCheck,
    BranchObservation,
    DifferentialResult,
    Divergence,
    DivergenceReport,
    cross_engine_report,
    cross_validate_baselines,
    predictor_fingerprint,
    replay_report,
    run_differential_suite,
    state_roundtrip_report,
    stats_fingerprint,
)
from repro.verification.environment import (
    VerificationEnvironment,
    VerificationReport,
)
from repro.verification.monitors import BtbInterfaceMonitor, Failure
from repro.verification.prediction_checker import PredictionRuleChecker
from repro.verification.preload import preload_from_branches, preload_random
from repro.verification.reference import MirrorEntry, ReferenceBtb1Mirror
from repro.verification.stimulus import RandomBranchDriver, StimulusConstraints
from repro.verification.transactions import (
    InstallTransaction,
    PredictionTransaction,
    RemoveTransaction,
    SearchTransaction,
)

__all__ = [
    "BaselineCheck",
    "BranchObservation",
    "DifferentialResult",
    "Divergence",
    "DivergenceReport",
    "cross_engine_report",
    "cross_validate_baselines",
    "predictor_fingerprint",
    "replay_report",
    "run_differential_suite",
    "state_roundtrip_report",
    "stats_fingerprint",
    "VerificationEnvironment",
    "VerificationReport",
    "BtbInterfaceMonitor",
    "Failure",
    "PredictionRuleChecker",
    "preload_from_branches",
    "preload_random",
    "MirrorEntry",
    "ReferenceBtb1Mirror",
    "RandomBranchDriver",
    "StimulusConstraints",
    "InstallTransaction",
    "PredictionTransaction",
    "RemoveTransaction",
    "SearchTransaction",
]
