"""Array preloading.

"The ... environment also employed preloading of the branch predictor
arrays like BTB1 and BTB2 to initialize states into those arrays which
would otherwise be difficult to get to or would take a large number of
simulation cycles to reach" (section VII).

Two modes, as in the paper: loading from a *static* predetermined
instruction stream, or generating a *dynamic* random set at cycle zero.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.common.rng import DeterministicRng
from repro.core.entries import BtbEntry
from repro.core.predictor import LookaheadBranchPredictor
from repro.isa.dynamic import DynamicBranch
from repro.isa.instructions import BranchKind
from repro.structures.saturating import TwoBitDirectionCounter


def preload_from_branches(
    predictor: LookaheadBranchPredictor,
    branches: Iterable[DynamicBranch],
    prime_btb2: bool = True,
) -> int:
    """Static preload: install every (taken) branch of a predetermined
    stream directly into the BTB1 (and optionally BTB2)."""
    installed = 0
    for branch in branches:
        if not branch.taken or branch.target is None:
            continue
        entry = BtbEntry(
            tag=0,
            offset=0,
            length=branch.instruction.length,
            kind=branch.kind,
            target=branch.target,
            bht=TwoBitDirectionCounter.for_direction(True, strong=True),
        )
        result = predictor.btb1.install(branch.address, branch.context, entry)
        if result.installed:
            installed += 1
            if prime_btb2 and predictor.btb2 is not None:
                predictor.btb2.install_snapshot(
                    branch.address, branch.context, entry
                )
    return installed


def preload_random(
    predictor: LookaheadBranchPredictor,
    count: int,
    seed: int = 99,
    address_base: int = 0x10000,
    address_span: int = 0x100000,
    context: int = 0,
    prime_btb2: bool = True,
) -> List[int]:
    """Dynamic preload: a random entry set generated "at cycle zero".

    Returns the installed branch addresses so a test can aim stimulus at
    the preloaded state.
    """
    rng = DeterministicRng(seed).fork("preload")
    addresses: List[int] = []
    for _ in range(count):
        address = address_base + rng.randint(0, address_span // 2) * 2
        kind = rng.choice(
            (
                BranchKind.CONDITIONAL_RELATIVE,
                BranchKind.UNCONDITIONAL_RELATIVE,
                BranchKind.LOOP_RELATIVE,
                BranchKind.UNCONDITIONAL_INDIRECT,
            )
        )
        target = address_base + rng.randint(0, address_span // 2) * 2
        entry = BtbEntry(
            tag=0,
            offset=0,
            length=rng.choice((2, 4, 6)),
            kind=kind,
            target=target,
            bht=TwoBitDirectionCounter(rng.randint(0, 3)),
            bidirectional=rng.chance(0.3),
            multi_target=rng.chance(0.15),
        )
        result = predictor.btb1.install(address, context, entry)
        if result.installed:
            addresses.append(address)
            if prime_btb2 and predictor.btb2 is not None:
                predictor.btb2.install_snapshot(address, context, entry)
    return addresses
