"""Hardware-signal-driven reference models.

Per section VII: "models of important hardware structures were created
... driven by internal hardware signals and ... in lockstep with the
hardware.  These ... were more of an abstraction of the internal
hardware workings than an independent reference model with values set by
verification code only.  Hardware implementation errors would corrupt
values in these models."

The reference BTB1 mirror therefore updates only from the DUT's *write*
events (install/remove transactions), never from expected values the
checkers compute — exactly the decoupling of figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.verification.transactions import InstallTransaction, RemoveTransaction


@dataclass(frozen=True)
class MirrorEntry:
    """Install-time immutable facts about one BTB1 slot."""

    tag: int
    offset: int
    context: int


class ReferenceBtb1Mirror:
    """A (row, way) -> entry mirror fed exclusively by write transactions."""

    def __init__(self, rows: int, ways: int):
        self.rows = rows
        self.ways = ways
        self._slots: Dict[Tuple[int, int], MirrorEntry] = {}
        self.install_events = 0
        self.remove_events = 0

    def apply_install(self, txn: InstallTransaction) -> None:
        self.install_events += 1
        if not txn.installed or txn.way is None:
            return
        self._slots[(txn.row, txn.way)] = MirrorEntry(
            tag=txn.tag, offset=txn.offset, context=txn.context
        )

    def apply_remove(self, txn: RemoveTransaction) -> None:
        self.remove_events += 1
        self._slots.pop((txn.row, txn.way), None)

    def slot(self, row: int, way: int) -> Optional[MirrorEntry]:
        return self._slots.get((row, way))

    def row_entries(self, row: int) -> List[Tuple[int, MirrorEntry]]:
        return [
            (way, entry)
            for (slot_row, way), entry in self._slots.items()
            if slot_row == row
        ]

    def occupancy(self) -> int:
        return len(self._slots)

    def slots(self) -> Dict[Tuple[int, int], MirrorEntry]:
        """A copy of the full mirror state (checkpoint crosschecking)."""
        return dict(self._slots)
