"""Constrained-random stimulus generation.

"Constrained random verification environments support a symbolic
language that allows a user to specify constraints in a parameter file
... Constraints restrict the random behavior of drivers and allow the
user to determine the probability of certain events" (section VII).

:class:`StimulusConstraints` is that parameter file; the driver draws
legal-but-adversarial branch streams from it (random addresses, kinds,
directions, context switches) to push the DUT into corner states that
real programs rarely reach.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Union

from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.isa.dynamic import DynamicBranch
from repro.isa.instructions import BranchKind, Instruction
from repro.workloads.multi import ContextSwitch


@dataclass
class StimulusConstraints:
    """The "parameter file" steering the random driver."""

    seed: int = 1234
    #: Address window the stream wanders inside.
    address_base: int = 0x10000
    address_span: int = 0x40000
    #: Relative probability of each branch kind.
    kind_weights: Dict[BranchKind, float] = field(
        default_factory=lambda: {
            BranchKind.CONDITIONAL_RELATIVE: 0.55,
            BranchKind.UNCONDITIONAL_RELATIVE: 0.2,
            BranchKind.LOOP_RELATIVE: 0.1,
            BranchKind.CONDITIONAL_INDIRECT: 0.05,
            BranchKind.UNCONDITIONAL_INDIRECT: 0.1,
        }
    )
    #: Probability a conditional resolves taken.
    conditional_taken_rate: float = 0.4
    #: Probability consecutive branches are sequential (same stream)
    #: rather than a jump to a random address.
    locality: float = 0.7
    #: Probability of a context switch between branches.
    context_switch_rate: float = 0.01
    context_count: int = 3
    #: Probability of revisiting a previously generated branch (lets
    #: table states mature instead of pure cold misses).
    revisit_rate: float = 0.6

    def validate(self) -> None:
        if not self.kind_weights:
            raise ConfigError("kind_weights must not be empty")
        for probability in (
            self.conditional_taken_rate,
            self.locality,
            self.context_switch_rate,
            self.revisit_rate,
        ):
            if not 0.0 <= probability <= 1.0:
                raise ConfigError(f"probability out of range: {probability}")


Event = Union[DynamicBranch, ContextSwitch]


class RandomBranchDriver:
    """Draws a constrained-random event stream."""

    def __init__(self, constraints: StimulusConstraints):
        constraints.validate()
        self.constraints = constraints
        self.rng = DeterministicRng(constraints.seed).fork("stimulus")
        self._pool: List[Instruction] = []
        self._sequence = 0
        self._cursor = constraints.address_base
        self._context = 0

    def _random_address(self) -> int:
        span = self.constraints.address_span
        return self.constraints.address_base + (self.rng.randint(0, span // 2) * 2)

    def _new_instruction(self) -> Instruction:
        kinds = list(self.constraints.kind_weights)
        weights = [self.constraints.kind_weights[k] for k in kinds]
        kind = self.rng.weighted_choice(kinds, weights)
        length = self.rng.choice((2, 4, 6))
        address = self._cursor
        indirect = kind in (
            BranchKind.CONDITIONAL_INDIRECT,
            BranchKind.UNCONDITIONAL_INDIRECT,
        )
        target = None if indirect else self._random_address()
        instruction = Instruction(
            address=address, length=length, kind=kind, static_target=target
        )
        self._pool.append(instruction)
        return instruction

    def _next_instruction(self) -> Instruction:
        if self._pool and self.rng.chance(self.constraints.revisit_rate):
            instruction = self.rng.choice(self._pool)
            self._cursor = instruction.address
            return instruction
        if not self.rng.chance(self.constraints.locality):
            self._cursor = self._random_address()
        return self._new_instruction()

    def _resolve(self, instruction: Instruction) -> DynamicBranch:
        kind = instruction.kind
        if kind in (BranchKind.UNCONDITIONAL_RELATIVE, BranchKind.UNCONDITIONAL_INDIRECT):
            taken = True
        elif kind is BranchKind.LOOP_RELATIVE:
            taken = self.rng.chance(0.8)
        else:
            taken = self.rng.chance(self.constraints.conditional_taken_rate)
        if taken:
            target = (
                instruction.static_target
                if instruction.static_target is not None
                else self._random_address()
            )
        else:
            target = None
        branch = DynamicBranch(
            sequence=self._sequence,
            instruction=instruction,
            taken=taken,
            target=target,
            context=self._context,
        )
        self._sequence += 1
        # Advance the cursor along the resolved path.
        self._cursor = branch.next_address + self.rng.randint(0, 8) * 2
        return branch

    def events(self, count: int) -> Iterator[Event]:
        """Yield *count* branches (plus interleaved context switches)."""
        produced = 0
        while produced < count:
            if self.rng.chance(self.constraints.context_switch_rate):
                self._context = self.rng.randint(
                    0, self.constraints.context_count - 1
                )
                yield ContextSwitch(
                    context=self._context, thread=0, entry_point=self._cursor
                )
            instruction = self._next_instruction()
            yield self._resolve(instruction)
            produced += 1
