"""Differential verification: cross-engine equivalence, deterministic
replay, and baseline cross-validation.

The paper's verification environment (§VII) checks the predictor against
reference models driven by the same stimulus.  This module generalises
the idea to the reproduction itself, where the risks are different: the
functional engine (:mod:`repro.engine.functional`) and the cycle engine
(:mod:`repro.engine.cycle`) both drive the same predictor protocol, so a
silent behavioural divergence between them — or a lossy
:mod:`repro.core.state_io` round-trip, or a seed-dependent
nondeterminism — would corrupt every experiment built on top without
failing a single unit test.

Four families of checks, each producing a :class:`DivergenceReport`
that localises the *first* diverging branch for debuggability:

* **Cross-engine equivalence** — the same workload through both engines
  must produce bit-identical per-branch predictions and identical shared
  accuracy invariants (branch counts, per-class mispredict totals,
  coverage; cycle-only timing stats are excluded).
* **Cross-backend equivalence** — the same workload through the same
  engine on two predictor *backends* (the object reference model and
  the array-accelerated twin of :mod:`repro.engine.array`) must produce
  bit-identical per-branch predictions, identical invariants, *and*
  identical final table fingerprints — the array backend's claim to
  existence is this check passing, not its authors' care.
* **Cross-mode equivalence** — the same workload through the same
  backend under two *engine modes* (the reference interpreter and the
  config-specialized compiled kernels of
  :mod:`repro.engine.specialize`) must produce bit-identical per-branch
  predictions, invariants, table fingerprints, *and* byte-identical
  ``state_io`` checkpoints — specialization is pure derivation, so any
  observable difference is a codegen bug.
* **Deterministic replay** — the same seed must reproduce bit-identical
  :class:`~repro.stats.metrics.RunStats` and final predictor state
  across runs, and predictor state must survive a ``state_io``
  save -> load -> save round-trip byte-identically (including when the
  restore target is a different backend than the saver).
* **Baseline cross-validation** — directed workloads with known-best
  outcomes (always-taken loops, dead guards, short counted loops) must
  reach their expected direction accuracy on the z15 predictor *and*
  every baseline, catching harness bugs that a single predictor's
  regression suite would attribute to the predictor.

``python -m repro verify-diff`` runs the full suite.
"""

from __future__ import annotations

import copy
import hashlib
import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.baselines import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    GsharePredictor,
    LTagePredictor,
    StaticBtfntPredictor,
)
from repro.configs import z15_config
from repro.core import LookaheadBranchPredictor, load_state, save_state
from repro.core.predictor import PredictionOutcome
from repro.core.state_io import _entry_to_dict
from repro.engine.array import BACKENDS, create_predictor
from repro.engine.specialize import ENGINE_MODES
from repro.engine.cycle import CycleEngine
from repro.engine.functional import FunctionalEngine
from repro.stats.metrics import RunStats, classify
from repro.workloads import get_workload
from repro.workloads.behaviors import AlwaysTaken, Loop, NeverTaken
from repro.workloads.program import CodeBuilder, Program
from repro.isa.instructions import BranchKind

#: A standard-suite workload name, or a prebuilt directed Program.
Workload = Union[str, Program]


def _resolve_workload(workload: Workload, seed: int) -> Program:
    if isinstance(workload, Program):
        # Behaviours are stateful (loop counters, pattern positions);
        # every differential run must start from a pristine copy.
        return copy.deepcopy(workload)
    return get_workload(workload, seed)


def _workload_name(workload: Workload) -> str:
    return workload.name if isinstance(workload, Program) else workload

#: RunStats fields both engines must agree on (timing-only stats such as
#: CPI, restart cycles or cache behaviour live in CycleStats and are
#: deliberately excluded).
SHARED_INVARIANTS: Tuple[str, ...] = (
    "branches",
    "instructions",
    "dynamic_predictions",
    "surprise_branches",
    "taken_branches",
    "mispredicted_branches",
    "direction_wrong",
    "target_wrong",
    "lines_searched",
    "empty_searches",
    "lines_skipped_by_skoot",
    "skoot_overshoots",
    "btb2_triggers",
    "bad_predictions_removed",
    "bad_taken_restarts",
    "cpred_accelerated_streams",
    "predicted_taken_dynamic",
)

#: Workload families the CLI cross-engine check runs by default.
DEFAULT_WORKLOAD_FAMILIES: Tuple[str, ...] = (
    "compute-kernel",
    "services",
    "dispatch",
    "transactions",
)


# ----------------------------------------------------------------------
# Per-branch observations
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BranchObservation:
    """The engine-independent view of one predicted branch."""

    index: int
    address: int
    taken: bool
    predicted_taken: bool
    predicted_target: Optional[int]
    dynamic: bool
    mispredict_class: str

    @classmethod
    def from_outcome(cls, index: int, outcome: PredictionOutcome
                     ) -> "BranchObservation":
        record = outcome.record
        return cls(
            index=index,
            address=record.address,
            taken=bool(record.actual_taken),
            predicted_taken=record.predicted_taken,
            predicted_target=record.predicted_target,
            dynamic=record.dynamic,
            mispredict_class=classify(outcome).value,
        )


def observer_into(sink: List[BranchObservation]
                  ) -> Callable[[PredictionOutcome], None]:
    """An engine ``observer`` callback appending to *sink*."""

    def observe(outcome: PredictionOutcome) -> None:
        sink.append(BranchObservation.from_outcome(len(sink), outcome))

    return observe


# ----------------------------------------------------------------------
# Divergence reporting
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Divergence:
    """The first point where two observation streams disagree."""

    index: int
    address: int
    field: str
    left: object
    right: object

    def describe(self) -> str:
        return (
            f"first divergence at branch #{self.index} "
            f"(address {self.address:#x}): {self.field} "
            f"{self.left!r} != {self.right!r}"
        )


@dataclass
class DivergenceReport:
    """Result of one differential comparison."""

    title: str
    left_label: str
    right_label: str
    branches_compared: int = 0
    first_divergence: Optional[Divergence] = None
    #: Aggregate metric mismatches as (metric, left value, right value).
    aggregate_mismatches: List[Tuple[str, object, object]] = field(
        default_factory=list
    )

    @property
    def clean(self) -> bool:
        return self.first_divergence is None and not self.aggregate_mismatches

    def summary(self) -> str:
        status = "CLEAN" if self.clean else "DIVERGED"
        lines = [
            f"[{status}] {self.title} "
            f"({self.left_label} vs {self.right_label}, "
            f"{self.branches_compared} branches)"
        ]
        if self.first_divergence is not None:
            lines.append(f"  {self.first_divergence.describe()}")
        for metric, left, right in self.aggregate_mismatches:
            lines.append(
                f"  aggregate {metric}: "
                f"{self.left_label}={left!r} {self.right_label}={right!r}"
            )
        return "\n".join(lines)


def diff_observations(
    left: Sequence[BranchObservation], right: Sequence[BranchObservation]
) -> Optional[Divergence]:
    """The first per-branch disagreement between two streams, if any."""
    for a, b in zip(left, right):
        if a == b:
            continue
        for name in ("address", "taken", "predicted_taken",
                     "predicted_target", "dynamic", "mispredict_class"):
            if getattr(a, name) != getattr(b, name):
                return Divergence(
                    index=a.index,
                    address=a.address,
                    field=name,
                    left=getattr(a, name),
                    right=getattr(b, name),
                )
    if len(left) != len(right):
        shorter = min(len(left), len(right))
        longer = left if len(left) > len(right) else right
        return Divergence(
            index=shorter,
            address=longer[shorter].address,
            field="stream_length",
            left=len(left),
            right=len(right),
        )
    return None


def comparable_stats(stats: RunStats) -> Dict[str, object]:
    """The engine-independent slice of a :class:`RunStats`, as a plain
    JSON-serialisable dict (stable key order)."""
    snapshot: Dict[str, object] = {
        name: getattr(stats, name) for name in SHARED_INVARIANTS
    }
    snapshot["classes"] = {
        klass.value: count
        for klass, count in sorted(
            stats.classes.items(), key=lambda kv: kv[0].value
        )
        if count
    }
    snapshot["direction_providers"] = {
        provider.value: list(counts)
        for provider, counts in sorted(
            stats.direction_providers.items(), key=lambda kv: kv[0].value
        )
    }
    snapshot["target_providers"] = {
        provider.value: list(counts)
        for provider, counts in sorted(
            stats.target_providers.items(), key=lambda kv: kv[0].value
        )
    }
    return snapshot


def diff_aggregates(
    left: Dict[str, object], right: Dict[str, object]
) -> List[Tuple[str, object, object]]:
    mismatches = []
    for key in left:
        if left[key] != right.get(key):
            mismatches.append((key, left[key], right.get(key)))
    for key in right:
        if key not in left:
            mismatches.append((key, None, right[key]))
    return mismatches


# ----------------------------------------------------------------------
# Fingerprints (bit-identical replay)
# ----------------------------------------------------------------------


def stats_fingerprint(stats: RunStats) -> str:
    """A stable digest of every shared accuracy invariant."""
    payload = json.dumps(comparable_stats(stats), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def predictor_fingerprint(predictor: LookaheadBranchPredictor) -> str:
    """A stable digest of the predictor's learned address-keyed state
    (BTB1 and BTB2 contents, position included) plus its top-level
    counters."""
    btb1 = [
        {"row": row, "way": way, **_entry_to_dict(entry)}
        for row, way, entry in predictor.btb1.entries()
    ]
    btb2 = []
    if predictor.btb2 is not None:
        for row, way, snapshot in predictor.btb2._table:
            btb2.append(
                {
                    "row": row,
                    "way": way,
                    "offset": snapshot.offset,
                    "kind": snapshot.kind.value,
                    "target": snapshot.target,
                    "bht": snapshot.bht_value,
                    "line_base": snapshot.line_base,
                    "context": snapshot.context,
                }
            )
    payload = {
        "btb1": btb1,
        "btb2": btb2,
        "predictions": predictor.predictions,
        "dynamic_predictions": predictor.dynamic_predictions,
        "surprise_branches": predictor.surprise_branches,
        "restarts": predictor.restarts,
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


# ----------------------------------------------------------------------
# Cross-engine equivalence
# ----------------------------------------------------------------------


def cross_engine_report(
    workload: Workload,
    branches: int = 3000,
    seed: int = 1234,
    config_factory: Callable = z15_config,
    prepare_functional: Optional[Callable] = None,
    prepare_cycle: Optional[Callable] = None,
    backend: str = "object",
    engine_mode: str = "reference",
) -> DivergenceReport:
    """Run *workload* through the functional and cycle engines with
    identically configured predictors and compare them branch by branch.

    The ``prepare_*`` hooks receive the freshly built predictor before
    the run; tests use them to corrupt one side's tables and prove the
    comparison actually detects divergence.  *backend* selects the
    predictor backend both engines drive; *engine_mode* the drive mode.
    """
    functional_observations: List[BranchObservation] = []
    functional_predictor = create_predictor(config_factory(), backend)
    if prepare_functional is not None:
        prepare_functional(functional_predictor)
    functional_engine = FunctionalEngine(
        functional_predictor,
        observer=observer_into(functional_observations),
        engine_mode=engine_mode,
    )
    functional_stats = functional_engine.run_program(
        _resolve_workload(workload, seed), max_branches=branches, seed=seed
    )

    cycle_observations: List[BranchObservation] = []
    cycle_predictor = create_predictor(config_factory(), backend)
    if prepare_cycle is not None:
        prepare_cycle(cycle_predictor)
    cycle_engine = CycleEngine(
        cycle_predictor, observer=observer_into(cycle_observations),
        engine_mode=engine_mode,
    )
    cycle_stats = cycle_engine.run_program(
        _resolve_workload(workload, seed), max_branches=branches, seed=seed
    ).accuracy

    suffix = "" if backend == "object" else f" [{backend} backend]"
    if engine_mode != "reference":
        suffix += f" [{engine_mode} mode]"
    report = DivergenceReport(
        title=f"cross-engine {_workload_name(workload)}{suffix}",
        left_label="functional",
        right_label="cycle",
        branches_compared=min(
            len(functional_observations), len(cycle_observations)
        ),
    )
    report.first_divergence = diff_observations(
        functional_observations, cycle_observations
    )
    report.aggregate_mismatches = diff_aggregates(
        comparable_stats(functional_stats), comparable_stats(cycle_stats)
    )
    return report


# ----------------------------------------------------------------------
# Cross-backend equivalence
# ----------------------------------------------------------------------


def cross_backend_report(
    workload: Workload,
    branches: int = 3000,
    seed: int = 1234,
    config_factory: Callable = z15_config,
    left_backend: str = "object",
    right_backend: str = "array",
    prepare_left: Optional[Callable] = None,
    prepare_right: Optional[Callable] = None,
    engine_mode: str = "reference",
) -> DivergenceReport:
    """Run *workload* through the functional engine on two predictor
    backends and compare them branch by branch.

    On top of the per-branch stream and the aggregate invariants, the
    final learned table state must fingerprint identically — the array
    backend must not merely predict the same, it must *learn* the same.
    The ``prepare_*`` hooks mirror :func:`cross_engine_report`'s; tests
    use them to prove the comparison detects seeded divergence.
    """
    streams: List[List[BranchObservation]] = []
    stats_pair: List[RunStats] = []
    fingerprints: List[str] = []
    audits: List[List[str]] = []
    for backend, prepare in (
        (left_backend, prepare_left),
        (right_backend, prepare_right),
    ):
        observations: List[BranchObservation] = []
        predictor = create_predictor(config_factory(), backend)
        if prepare is not None:
            prepare(predictor)
        engine = FunctionalEngine(
            predictor, observer=observer_into(observations),
            engine_mode=engine_mode,
        )
        stats = engine.run_program(
            _resolve_workload(workload, seed), max_branches=branches,
            seed=seed,
        )
        streams.append(observations)
        stats_pair.append(stats)
        fingerprints.append(predictor_fingerprint(predictor))
        audits.append(predictor.audit())

    mode_suffix = "" if engine_mode == "reference" else f" [{engine_mode} mode]"
    report = DivergenceReport(
        title=f"cross-backend {_workload_name(workload)}{mode_suffix}",
        left_label=left_backend,
        right_label=right_backend,
        branches_compared=min(len(streams[0]), len(streams[1])),
    )
    report.first_divergence = diff_observations(streams[0], streams[1])
    report.aggregate_mismatches = diff_aggregates(
        comparable_stats(stats_pair[0]), comparable_stats(stats_pair[1])
    )
    if fingerprints[0] != fingerprints[1]:
        report.aggregate_mismatches.append(
            ("predictor_fingerprint", fingerprints[0], fingerprints[1])
        )
    for label, audit in zip((left_backend, right_backend), audits):
        if audit:
            report.aggregate_mismatches.append(
                ("audit", label, "; ".join(audit))
            )
    return report


# ----------------------------------------------------------------------
# Cross-mode equivalence (reference interpreter vs compiled kernels)
# ----------------------------------------------------------------------


def cross_mode_report(
    workload: Workload,
    branches: int = 3000,
    seed: int = 1234,
    config_factory: Callable = z15_config,
    backend: str = "object",
    left_mode: str = "reference",
    right_mode: str = "fast",
    prepare_left: Optional[Callable] = None,
    prepare_right: Optional[Callable] = None,
) -> DivergenceReport:
    """Run *workload* through the functional engine on one backend under
    two engine modes and compare them branch by branch.

    On top of the per-branch stream, the aggregate invariants and the
    final table fingerprints, both predictors' ``state_io`` checkpoints
    must be **byte-identical** — specialization is pure derivation from
    the config, so the compiled kernels may never leave different state
    behind.  The ``prepare_*`` hooks mirror :func:`cross_engine_report`'s.
    """
    streams: List[List[BranchObservation]] = []
    stats_pair: List[RunStats] = []
    fingerprints: List[str] = []
    state_digests: List[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        for mode, prepare in (
            (left_mode, prepare_left),
            (right_mode, prepare_right),
        ):
            observations: List[BranchObservation] = []
            predictor = create_predictor(config_factory(), backend)
            if prepare is not None:
                prepare(predictor)
            engine = FunctionalEngine(
                predictor, observer=observer_into(observations),
                engine_mode=mode,
            )
            stats = engine.run_program(
                _resolve_workload(workload, seed), max_branches=branches,
                seed=seed,
            )
            path = Path(tmp) / f"{mode}-{len(streams)}.json"
            save_state(predictor, path)
            streams.append(observations)
            stats_pair.append(stats)
            fingerprints.append(predictor_fingerprint(predictor))
            state_digests.append(
                hashlib.sha256(path.read_bytes()).hexdigest()
            )

    suffix = "" if backend == "object" else f" [{backend} backend]"
    report = DivergenceReport(
        title=f"cross-mode {_workload_name(workload)}{suffix}",
        left_label=left_mode,
        right_label=right_mode,
        branches_compared=min(len(streams[0]), len(streams[1])),
    )
    report.first_divergence = diff_observations(streams[0], streams[1])
    report.aggregate_mismatches = diff_aggregates(
        comparable_stats(stats_pair[0]), comparable_stats(stats_pair[1])
    )
    if fingerprints[0] != fingerprints[1]:
        report.aggregate_mismatches.append(
            ("predictor_fingerprint", fingerprints[0], fingerprints[1])
        )
    if state_digests[0] != state_digests[1]:
        report.aggregate_mismatches.append(
            ("state_bytes", state_digests[0], state_digests[1])
        )
    return report


# ----------------------------------------------------------------------
# Deterministic replay
# ----------------------------------------------------------------------


def _functional_run(
    workload: Workload, branches: int, seed: int, config_factory: Callable,
    backend: str = "object",
    engine_mode: str = "reference",
) -> Tuple[List[BranchObservation], RunStats, LookaheadBranchPredictor]:
    observations: List[BranchObservation] = []
    predictor = create_predictor(config_factory(), backend)
    engine = FunctionalEngine(predictor, observer=observer_into(observations),
                              engine_mode=engine_mode)
    stats = engine.run_program(
        _resolve_workload(workload, seed), max_branches=branches, seed=seed
    )
    return observations, stats, predictor


def replay_report(
    workload: Workload,
    branches: int = 3000,
    seed: int = 1234,
    config_factory: Callable = z15_config,
    backend: str = "object",
    engine_mode: str = "reference",
) -> DivergenceReport:
    """Two identically seeded runs must be bit-identical: same per-branch
    predictions, same :class:`RunStats`, same final predictor state."""
    first_obs, first_stats, first_pred = _functional_run(
        workload, branches, seed, config_factory, backend, engine_mode
    )
    second_obs, second_stats, second_pred = _functional_run(
        workload, branches, seed, config_factory, backend, engine_mode
    )
    suffix = "" if backend == "object" else f" [{backend} backend]"
    if engine_mode != "reference":
        suffix += f" [{engine_mode} mode]"
    report = DivergenceReport(
        title=f"replay {_workload_name(workload)} seed={seed}{suffix}",
        left_label="run-1",
        right_label="run-2",
        branches_compared=min(len(first_obs), len(second_obs)),
    )
    report.first_divergence = diff_observations(first_obs, second_obs)
    report.aggregate_mismatches = diff_aggregates(
        comparable_stats(first_stats), comparable_stats(second_stats)
    )
    first_fp = predictor_fingerprint(first_pred)
    second_fp = predictor_fingerprint(second_pred)
    if first_fp != second_fp:
        report.aggregate_mismatches.append(
            ("predictor_fingerprint", first_fp, second_fp)
        )
    return report


def state_roundtrip_report(
    predictor: LookaheadBranchPredictor,
    label: str = "predictor",
    restore_backend: Optional[str] = None,
) -> DivergenceReport:
    """Save *predictor*'s state, restore it into a fresh same-config
    predictor, save again — the two files must be byte-identical and
    the restored tables must fingerprint identically.

    By default the fresh predictor is the same class as the saver, so
    an array-backed predictor round-trips through its own backend;
    *restore_backend* forces the restore target onto a named backend
    for cross-backend checkpoint checks (e.g. array state restored
    into the object model, or vice versa).
    """
    report = DivergenceReport(
        title=f"state round-trip {label}",
        left_label="saved",
        right_label="resaved",
        branches_compared=0,
    )
    with tempfile.TemporaryDirectory() as tmp:
        first_path = Path(tmp) / "first.json"
        second_path = Path(tmp) / "second.json"
        saved = save_state(predictor, first_path)
        if restore_backend is None:
            fresh = type(predictor)(predictor.config)
        else:
            fresh = create_predictor(predictor.config, restore_backend)
        loaded = load_state(fresh, first_path)
        resaved = save_state(fresh, second_path)
        if saved != loaded:
            report.aggregate_mismatches.append(("installed_counts", saved, loaded))
        if saved != resaved:
            report.aggregate_mismatches.append(("resaved_counts", saved, resaved))
        first_bytes = first_path.read_bytes()
        second_bytes = second_path.read_bytes()
        if first_bytes != second_bytes:
            report.aggregate_mismatches.append(
                (
                    "state_bytes",
                    hashlib.sha256(first_bytes).hexdigest(),
                    hashlib.sha256(second_bytes).hexdigest(),
                )
            )
    return report


# ----------------------------------------------------------------------
# Baseline cross-validation on directed workloads
# ----------------------------------------------------------------------


def always_taken_loop_program(start: int = 0x4000) -> Program:
    """A tight loop closed by an unconditional branch: every dynamic
    branch is taken, so *every* predictor must approach 100% direction
    accuracy once warm."""
    builder = CodeBuilder(start, name="directed-always-taken")
    top = builder.label("top")
    builder.straight(4)
    builder.branch(BranchKind.UNCONDITIONAL_RELATIVE, target=top,
                   behavior=AlwaysTaken())
    return builder.build()


def dead_guard_program(start: int = 0x5000) -> Program:
    """A never-taken conditional guard inside an always-taken loop: any
    predictor that learns (or statically guesses forward-not-taken)
    must approach 100%; a hardwired always-taken predictor must sit
    near 50% (it still gets the loop-closing branch right)."""
    builder = CodeBuilder(start, name="directed-dead-guard")
    top = builder.label("top")
    skip = builder.forward_label("skip")
    builder.branch(BranchKind.CONDITIONAL_RELATIVE, target=skip,
                   behavior=NeverTaken())
    builder.straight(3)
    builder.bind(skip)
    builder.branch(BranchKind.UNCONDITIONAL_RELATIVE, target=top,
                   behavior=AlwaysTaken())
    return builder.build()


def counted_loop_program(trip_count: int = 8, start: int = 0x6000) -> Program:
    """A counted loop (taken ``trip_count - 1`` of every ``trip_count``
    executions) restarted by an unconditional branch: simple-counter
    predictors converge to the bias, history predictors to ~100%."""
    builder = CodeBuilder(start, name="directed-counted-loop")
    entry = builder.label("entry")
    builder.straight(2)
    builder.branch(BranchKind.LOOP_RELATIVE, target=entry,
                   behavior=Loop(trip_count))
    builder.branch(BranchKind.UNCONDITIONAL_RELATIVE, target=entry,
                   behavior=AlwaysTaken())
    return builder.build()


#: Directed program builders by family name.
DIRECTED_FAMILIES: Dict[str, Callable[[], Program]] = {
    "always-taken-loop": always_taken_loop_program,
    "dead-guard": dead_guard_program,
    "counted-loop": counted_loop_program,
}


def _directed_predictors() -> Dict[str, Callable[[], object]]:
    return {
        "z15": lambda: LookaheadBranchPredictor(z15_config()),
        "always-taken": AlwaysTakenPredictor,
        "static-btfnt": StaticBtfntPredictor,
        "bimodal": BimodalPredictor,
        "gshare": GsharePredictor,
        "l-tage": LTagePredictor,
    }


#: Minimum post-warmup direction accuracy by (family, predictor).
#: ``None`` means "no expectation" (the family is genuinely hard for
#: that predictor — e.g. always-taken on a dead guard).
BASELINE_EXPECTATIONS: Dict[str, Dict[str, Optional[float]]] = {
    "always-taken-loop": {
        "z15": 0.99,
        "always-taken": 0.99,
        "static-btfnt": 0.99,
        "bimodal": 0.99,
        "gshare": 0.99,
        "l-tage": 0.99,
    },
    "dead-guard": {
        "z15": 0.99,
        # Correct on the loop-closing half of the branches only.
        "always-taken": 0.45,
        "static-btfnt": 0.99,
        "bimodal": 0.99,
        "gshare": 0.99,
        "l-tage": 0.99,
    },
    "counted-loop": {
        "z15": 0.95,
        # The bias leaves ~1 mispredict per trip for counter predictors.
        "always-taken": 0.80,
        "static-btfnt": 0.80,
        "bimodal": 0.80,
        "gshare": 0.95,
        "l-tage": 0.95,
    },
}


@dataclass(frozen=True)
class BaselineCheck:
    """One predictor's accuracy on one directed family."""

    family: str
    predictor: str
    direction_accuracy: float
    minimum: float

    @property
    def ok(self) -> bool:
        return self.direction_accuracy >= self.minimum

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        return (
            f"[{status}] {self.family:<18} {self.predictor:<13} "
            f"accuracy {self.direction_accuracy:6.2%} "
            f"(minimum {self.minimum:.0%})"
        )


def cross_validate_baselines(
    seed: int = 1234,
    branches: int = 2000,
    warmup: int = 500,
) -> List[BaselineCheck]:
    """Run every predictor over every directed family and check the
    known-best direction accuracy expectations."""
    checks: List[BaselineCheck] = []
    for family, build in DIRECTED_FAMILIES.items():
        expectations = BASELINE_EXPECTATIONS[family]
        for name, factory in _directed_predictors().items():
            minimum = expectations.get(name)
            if minimum is None:
                continue
            engine = FunctionalEngine(factory())
            stats = engine.run_program(
                build(), max_branches=branches,
                warmup_branches=warmup, seed=seed,
            )
            checks.append(
                BaselineCheck(
                    family=family,
                    predictor=name,
                    direction_accuracy=stats.direction_accuracy,
                    minimum=minimum,
                )
            )
    return checks


# ----------------------------------------------------------------------
# The full suite
# ----------------------------------------------------------------------


@dataclass
class DifferentialResult:
    """Everything ``verify-diff`` ran, with an overall verdict."""

    reports: List[DivergenceReport] = field(default_factory=list)
    baseline_checks: List[BaselineCheck] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return all(r.clean for r in self.reports) and all(
            c.ok for c in self.baseline_checks
        )

    @property
    def divergence_count(self) -> int:
        return sum(1 for r in self.reports if not r.clean) + sum(
            1 for c in self.baseline_checks if not c.ok
        )

    def summary(self) -> str:
        lines = ["== differential verification =="]
        for report in self.reports:
            lines.append(report.summary())
        if self.baseline_checks:
            lines.append("baseline cross-validation:")
            for check in self.baseline_checks:
                lines.append(f"  {check.describe()}")
        verdict = "CLEAN" if self.clean else "DIVERGED"
        lines.append(
            f"verdict: {verdict} ({self.divergence_count} failing checks)"
        )
        return "\n".join(lines)


def run_differential_suite(
    seed: int = 1234,
    branches: int = 3000,
    workloads: Sequence[str] = DEFAULT_WORKLOAD_FAMILIES,
    config_factory: Callable = z15_config,
    backends: Sequence[str] = ("object", "array"),
    engine_modes: Sequence[str] = ("reference", "fast"),
) -> DifferentialResult:
    """The full differential sweep the CLI exposes as ``verify-diff``.

    *backends* names the predictor backends to verify: the first is the
    reference every other backend is differentially compared against
    (per-branch streams, invariants and final table fingerprints), and
    the cross-engine functional-vs-cycle check runs on each.

    *engine_modes* names the drive modes to verify as a full matrix
    against the backends: the first is the reference mode; every other
    mode is cross-mode compared against it on **every** backend
    (per-branch streams, invariants, table fingerprints, byte-identical
    checkpoints), the cross-engine and cross-backend checks repeat under
    each mode, and replay runs on each (backend, mode) pair.
    """
    for backend in backends:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown predictor backend {backend!r}; "
                f"choose from {sorted(BACKENDS)}"
            )
    for mode in engine_modes:
        if mode not in ENGINE_MODES:
            raise ValueError(
                f"unknown engine mode {mode!r}; "
                f"choose from {sorted(ENGINE_MODES)}"
            )
    reference = backends[0]
    reference_mode = engine_modes[0]
    result = DifferentialResult()
    for workload in workloads:
        for backend in backends:
            for mode in engine_modes:
                result.reports.append(
                    cross_engine_report(
                        workload, branches=branches, seed=seed,
                        config_factory=config_factory, backend=backend,
                        engine_mode=mode,
                    )
                )
            for mode in engine_modes[1:]:
                result.reports.append(
                    cross_mode_report(
                        workload, branches=branches, seed=seed,
                        config_factory=config_factory, backend=backend,
                        left_mode=reference_mode, right_mode=mode,
                    )
                )
        for backend in backends[1:]:
            for mode in engine_modes:
                result.reports.append(
                    cross_backend_report(
                        workload, branches=branches, seed=seed,
                        config_factory=config_factory,
                        left_backend=reference, right_backend=backend,
                        engine_mode=mode,
                    )
                )
    for backend in backends:
        for mode in engine_modes:
            result.reports.append(
                replay_report(
                    workloads[0], branches=branches, seed=seed,
                    config_factory=config_factory, backend=backend,
                    engine_mode=mode,
                )
            )
    # State persistence round-trips on warmed predictors: each backend
    # through itself, plus every non-reference backend's state restored
    # into the reference model (and the reference's into it).
    for backend in backends:
        _obs, _stats, warmed = _functional_run(
            workloads[-1], branches, seed, config_factory, backend
        )
        result.reports.append(
            state_roundtrip_report(
                warmed, label=f"after {workloads[-1]} [{backend}]"
            )
        )
        for other in backends:
            if other == backend:
                continue
            result.reports.append(
                state_roundtrip_report(
                    warmed,
                    label=f"after {workloads[-1]} [{backend} -> {other}]",
                    restore_backend=other,
                )
            )
    result.baseline_checks = cross_validate_baselines(seed=seed)
    return result
