"""Classic baseline direction predictors.

These are the comparison points decades of literature (the paper's
section II.D references) measure against: static heuristics, the
bimodal 2-bit table, and gshare.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.baselines.base import BaselinePredictor, DirectMappedBtb
from repro.common.bits import mask
from repro.core.providers import DirectionProvider, TargetProvider
from repro.isa.dynamic import DynamicBranch
from repro.isa.instructions import static_guess_taken


class AlwaysTakenPredictor(BaselinePredictor):
    """Every branch predicted taken; targets from a small BTB."""

    name = "always-taken"

    def __init__(self, btb_entries: int = 4096):
        super().__init__()
        self.btb = DirectMappedBtb(btb_entries)

    def predict_direction(self, branch) -> Tuple[bool, DirectionProvider]:
        return True, DirectionProvider.STATIC

    def predict_target(self, branch) -> Tuple[Optional[int], TargetProvider]:
        target = self.btb.lookup(branch.address)
        if target is not None:
            return target, TargetProvider.BTB1
        if branch.instruction.static_target is not None:
            return branch.instruction.static_target, TargetProvider.STATIC_RELATIVE
        return None, TargetProvider.NONE

    def train(self, branch: DynamicBranch) -> None:
        if branch.taken and branch.target is not None:
            self.btb.install(branch.address, branch.target)


class StaticBtfntPredictor(BaselinePredictor):
    """Backward-taken / forward-not-taken plus the decode static rules."""

    name = "static-btfnt"

    def __init__(self, btb_entries: int = 4096):
        super().__init__()
        self.btb = DirectMappedBtb(btb_entries)

    def predict_direction(self, branch) -> Tuple[bool, DirectionProvider]:
        instruction = branch.instruction
        if static_guess_taken(instruction):
            return True, DirectionProvider.STATIC
        if (
            instruction.static_target is not None
            and instruction.static_target < instruction.address
        ):
            return True, DirectionProvider.STATIC
        return False, DirectionProvider.STATIC

    def predict_target(self, branch) -> Tuple[Optional[int], TargetProvider]:
        if branch.instruction.static_target is not None:
            return branch.instruction.static_target, TargetProvider.STATIC_RELATIVE
        target = self.btb.lookup(branch.address)
        if target is not None:
            return target, TargetProvider.BTB1
        return None, TargetProvider.NONE

    def train(self, branch: DynamicBranch) -> None:
        if branch.taken and branch.target is not None:
            self.btb.install(branch.address, branch.target)


class BimodalPredictor(BaselinePredictor):
    """Per-PC 2-bit saturating counters."""

    name = "bimodal"

    def __init__(self, table_size: int = 16384, btb_entries: int = 4096):
        super().__init__()
        if table_size <= 0 or table_size & (table_size - 1):
            raise ValueError("table_size must be a positive power of two")
        self.table = [2] * table_size  # weak taken
        self._mask = table_size - 1
        self.btb = DirectMappedBtb(btb_entries)

    def _index(self, address: int) -> int:
        return (address >> 1) & self._mask

    def predict_direction(self, branch) -> Tuple[bool, DirectionProvider]:
        counter = self.table[self._index(branch.address)]
        return counter >= 2, DirectionProvider.BHT

    def predict_target(self, branch) -> Tuple[Optional[int], TargetProvider]:
        target = self.btb.lookup(branch.address)
        if target is not None:
            return target, TargetProvider.BTB1
        if branch.instruction.static_target is not None:
            return branch.instruction.static_target, TargetProvider.STATIC_RELATIVE
        return None, TargetProvider.NONE

    def train(self, branch: DynamicBranch) -> None:
        index = self._index(branch.address)
        if branch.taken:
            self.table[index] = min(3, self.table[index] + 1)
            if branch.target is not None:
                self.btb.install(branch.address, branch.target)
        else:
            self.table[index] = max(0, self.table[index] - 1)


class GsharePredictor(BaselinePredictor):
    """Global-history XOR-indexed 2-bit counters (McFarling)."""

    name = "gshare"

    def __init__(
        self,
        table_size: int = 16384,
        history_bits: int = 12,
        btb_entries: int = 4096,
    ):
        super().__init__()
        if table_size <= 0 or table_size & (table_size - 1):
            raise ValueError("table_size must be a positive power of two")
        self.table = [2] * table_size
        self._index_bits = table_size.bit_length() - 1
        self.history_bits = history_bits
        self._history = 0
        self.btb = DirectMappedBtb(btb_entries)

    def _index(self, address: int) -> int:
        history = self._history & mask(self.history_bits)
        return ((address >> 1) ^ history) & mask(self._index_bits)

    def predict_direction(self, branch) -> Tuple[bool, DirectionProvider]:
        counter = self.table[self._index(branch.address)]
        return counter >= 2, DirectionProvider.PHT_SHORT

    def predict_target(self, branch) -> Tuple[Optional[int], TargetProvider]:
        target = self.btb.lookup(branch.address)
        if target is not None:
            return target, TargetProvider.BTB1
        if branch.instruction.static_target is not None:
            return branch.instruction.static_target, TargetProvider.STATIC_RELATIVE
        return None, TargetProvider.NONE

    def train(self, branch: DynamicBranch) -> None:
        index = self._index(branch.address)
        if branch.taken:
            self.table[index] = min(3, self.table[index] + 1)
            if branch.target is not None:
                self.btb.install(branch.address, branch.target)
        else:
            self.table[index] = max(0, self.table[index] - 1)
        self._history = ((self._history << 1) | int(branch.taken)) & mask(
            self.history_bits
        )

    def restart(self, address: int, context: int = 0, thread: int = 0) -> None:
        """History persists across restarts (global predictor)."""
