"""Baseline predictor scaffolding.

Baselines implement the same driving protocol as the z15 model
(:meth:`restart`, :meth:`context_switch`, :meth:`predict_and_resolve`,
:meth:`finalize`) so the :class:`~repro.engine.FunctionalEngine` and the
benchmarks can swap them in directly.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.gpq import PredictionRecord
from repro.core.predictor import PredictionOutcome, SearchTrace
from repro.core.providers import DirectionProvider, TargetProvider
from repro.isa.dynamic import DynamicBranch


class BaselinePredictor:
    """Common plumbing: build records, call the subclass hooks, train."""

    name = "baseline"

    def __init__(self) -> None:
        self.predictions = 0

    # -- protocol ------------------------------------------------------

    def restart(self, address: int, context: int = 0, thread: int = 0) -> None:
        """Baselines keep no lookahead search state."""

    def context_switch(self, address: int, context: int, thread: int = 0) -> None:
        self.restart(address, context, thread)

    def finalize(self) -> None:
        """No delayed updates by default."""

    def predict_and_resolve(self, branch: DynamicBranch) -> PredictionOutcome:
        self.predictions += 1
        taken, direction_provider = self.predict_direction(branch)
        target: Optional[int] = None
        target_provider = TargetProvider.NONE
        if taken:
            target, target_provider = self.predict_target(branch)
        record = PredictionRecord(
            sequence=branch.sequence,
            address=branch.address,
            context=branch.context,
            thread=branch.thread,
            kind=branch.kind,
            length=branch.instruction.length,
            dynamic=True,
            predicted_taken=taken,
            predicted_target=target,
            direction_provider=direction_provider,
            target_provider=target_provider,
        )
        record.resolve(branch.taken, branch.target)
        self.train(branch)
        return PredictionOutcome(record=record, trace=SearchTrace())

    # -- subclass hooks --------------------------------------------------

    def predict_direction(
        self, branch: DynamicBranch
    ) -> Tuple[bool, DirectionProvider]:
        raise NotImplementedError

    def predict_target(
        self, branch: DynamicBranch
    ) -> Tuple[Optional[int], TargetProvider]:
        """Default target source: a direct-mapped BTB, when present."""
        raise NotImplementedError

    def train(self, branch: DynamicBranch) -> None:
        raise NotImplementedError


class DirectMappedBtb:
    """A simple direct-mapped branch target buffer for the baselines."""

    def __init__(self, entries: int = 4096):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        self.entries = entries
        self._mask = entries - 1
        self._tags = [None] * entries
        self._targets = [0] * entries

    def _index(self, address: int) -> int:
        return (address >> 1) & self._mask

    def lookup(self, address: int) -> Optional[int]:
        index = self._index(address)
        if self._tags[index] == address:
            return self._targets[index]
        return None

    def install(self, address: int, target: int) -> None:
        index = self._index(address)
        self._tags[index] = address
        self._targets[index] = target
