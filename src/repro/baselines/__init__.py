"""Baseline predictors for comparison benchmarks."""

from repro.baselines.base import BaselinePredictor, DirectMappedBtb
from repro.baselines.ltage import LTagePredictor
from repro.baselines.simple import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    GsharePredictor,
    StaticBtfntPredictor,
)

__all__ = [
    "BaselinePredictor",
    "DirectMappedBtb",
    "LTagePredictor",
    "AlwaysTakenPredictor",
    "BimodalPredictor",
    "GsharePredictor",
    "StaticBtfntPredictor",
]
