"""An L-TAGE-style reference direction predictor.

The paper's TAGE PHT "exploits a variation of the TAGE algorithm based
off of [8]" — Seznec's L-TAGE.  This baseline implements the canonical
academic arrangement (a bimodal base plus N tagged tables with
geometrically increasing *outcome* history) so the z15's two-table,
GPV-indexed variation can be compared against its ancestor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.baselines.base import BaselinePredictor, DirectMappedBtb
from repro.common.bits import fold_xor, mask
from repro.core.providers import DirectionProvider, TargetProvider
from repro.isa.dynamic import DynamicBranch


@dataclass
class _TaggedEntry:
    tag: int
    counter: int  # 3-bit, taken when >= 4
    useful: int  # 2-bit


class LTagePredictor(BaselinePredictor):
    """Bimodal base + geometric-history tagged tables."""

    name = "l-tage"

    def __init__(
        self,
        table_rows: int = 1024,
        table_count: int = 4,
        min_history: int = 4,
        max_history: int = 64,
        tag_bits: int = 9,
        btb_entries: int = 4096,
    ):
        super().__init__()
        if table_rows & (table_rows - 1):
            raise ValueError("table_rows must be a power of two")
        self.table_rows = table_rows
        self.tag_bits = tag_bits
        self._row_bits = table_rows.bit_length() - 1
        # Geometric history lengths.
        self.histories: List[int] = []
        ratio = (max_history / min_history) ** (1 / max(1, table_count - 1))
        length = float(min_history)
        for _ in range(table_count):
            self.histories.append(int(round(length)))
            length *= ratio
        self.tables: List[List[Optional[_TaggedEntry]]] = [
            [None] * table_rows for _ in range(table_count)
        ]
        self.base = [2] * 8192  # bimodal, weak taken
        self._history = 0
        self._history_bits = max_history
        self.btb = DirectMappedBtb(btb_entries)
        self._alloc_tick = 0
        # Prediction bookkeeping between predict and train.
        self._last: Optional[dict] = None

    # -- index/tag -------------------------------------------------------

    def _index(self, table: int, address: int) -> int:
        history = self._history & mask(self.histories[table])
        return fold_xor((address >> 1) ^ (history * 0x9E3B), self._row_bits)

    def _tag(self, table: int, address: int) -> int:
        history = self._history & mask(self.histories[table])
        return fold_xor((address >> 2) ^ (history * 0x7F4A) ^ table, self.tag_bits)

    # -- prediction ------------------------------------------------------

    def predict_direction(self, branch) -> Tuple[bool, DirectionProvider]:
        address = branch.address
        provider_table = None
        provider_entry = None
        alt_taken = self.base[(address >> 1) & 8191] >= 2
        # Longest-history match wins.
        for table in reversed(range(len(self.tables))):
            row = self._index(table, address)
            entry = self.tables[table][row]
            if entry is not None and entry.tag == self._tag(table, address):
                provider_table = table
                provider_entry = entry
                break
        if provider_entry is not None:
            taken = provider_entry.counter >= 4
            provider = DirectionProvider.PHT_LONG
        else:
            taken = alt_taken
            provider = DirectionProvider.BHT
        self._last = {
            "address": address,
            "table": provider_table,
            "taken": taken,
            "alt_taken": alt_taken,
        }
        return taken, provider

    def predict_target(self, branch) -> Tuple[Optional[int], TargetProvider]:
        target = self.btb.lookup(branch.address)
        if target is not None:
            return target, TargetProvider.BTB1
        if branch.instruction.static_target is not None:
            return branch.instruction.static_target, TargetProvider.STATIC_RELATIVE
        return None, TargetProvider.NONE

    # -- training --------------------------------------------------------

    def train(self, branch: DynamicBranch) -> None:
        assert self._last is not None and self._last["address"] == branch.address
        state = self._last
        self._last = None
        address = branch.address
        actual = branch.taken
        table = state["table"]
        if table is not None:
            row = self._index(table, address)
            entry = self.tables[table][row]
            if entry is not None and entry.tag == self._tag(table, address):
                if actual:
                    entry.counter = min(7, entry.counter + 1)
                else:
                    entry.counter = max(0, entry.counter - 1)
                was_correct = state["taken"] == actual
                alt_correct = state["alt_taken"] == actual
                if was_correct and not alt_correct:
                    entry.useful = min(3, entry.useful + 1)
                elif not was_correct and alt_correct:
                    entry.useful = max(0, entry.useful - 1)
        else:
            index = (address >> 1) & 8191
            if actual:
                self.base[index] = min(3, self.base[index] + 1)
            else:
                self.base[index] = max(0, self.base[index] - 1)

        # Allocate a longer-history entry on a misprediction.
        if state["taken"] != actual:
            start = (table + 1) if table is not None else 0
            self._allocate(start, address, actual)

        if actual and branch.target is not None:
            self.btb.install(address, branch.target)
        self._history = ((self._history << 1) | int(actual)) & mask(
            self._history_bits
        )

    def _allocate(self, start_table: int, address: int, taken: bool) -> None:
        for table in range(start_table, len(self.tables)):
            row = self._index(table, address)
            entry = self.tables[table][row]
            if entry is None or entry.useful == 0:
                self.tables[table][row] = _TaggedEntry(
                    tag=self._tag(table, address),
                    counter=4 if taken else 3,
                    useful=0,
                )
                return
        # Nothing allocatable: age usefulness (Seznec's decay).
        for table in range(start_table, len(self.tables)):
            row = self._index(table, address)
            entry = self.tables[table][row]
            if entry is not None:
                entry.useful = max(0, entry.useful - 1)

    def restart(self, address: int, context: int = 0, thread: int = 0) -> None:
        """Global history persists across restarts."""
